//! The EC2 spot-market and placement-group model (Table II).
//!
//! The paper compared a fully-paid 63-instance assembly in a single
//! placement group against a mix of spot-request and on-demand instances
//! scattered over four placement groups, finding the times statistically
//! equal and the mix ~4.5x cheaper — but also that "we never succeeded in
//! establishing a full 63-host configuration of spot request instances",
//! having to top the fleet up with on-demand hosts.

use crate::catalog::EC2_SPOT_NODE_HOUR;
use hetero_simmpi::rng::{hash_msg, to_unit};
use hetero_simmpi::ClusterTopology;
use serde::{Deserialize, Serialize};

/// How to acquire an instance fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FleetStrategy {
    /// All on-demand instances in a single placement group (Table II
    /// "full").
    OnDemandSingleGroup,
    /// Bid for spot instances, fall back to on-demand for the shortfall,
    /// scattered over `groups` placement groups (Table II "mix").
    SpotMix {
        /// Placement groups the fleet is drawn from.
        groups: usize,
        /// Maximum spot bid accepted, in dollars per instance-hour.
        max_bid: f64,
    },
}

/// One acquired instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeAllocation {
    /// Whether the instance was obtained via a spot request.
    pub spot: bool,
    /// Placement group the instance landed in.
    pub group: usize,
    /// Hourly price of this instance.
    pub price_per_hour: f64,
}

/// An acquired fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetAllocation {
    /// Per-instance allocations.
    pub nodes: Vec<NodeAllocation>,
    /// Strategy used.
    pub strategy: FleetStrategy,
}

/// Bounds on the number of cc2.8xlarge spot instances the market will hand
/// out at once. The study repeatedly failed to fill 63 hosts from spot
/// alone — modeled as a finite spot capacity drawn from this range, so a
/// 63-instance fleet always needs an on-demand top-up (the convergence of
/// the "mix" and "full" cost curves at large sizes in Figures 6/7).
pub const SPOT_CAPACITY_RANGE: (usize, usize) = (40, 60);

/// Acquires `nodes` cc2.8xlarge instances under `strategy`. Deterministic
/// per (strategy, nodes, seed).
pub fn acquire_fleet(
    nodes: usize,
    strategy: FleetStrategy,
    on_demand_price: f64,
    seed: u64,
) -> FleetAllocation {
    assert!(nodes > 0);
    let mut out = Vec::with_capacity(nodes);
    match strategy {
        FleetStrategy::OnDemandSingleGroup => {
            for _ in 0..nodes {
                out.push(NodeAllocation {
                    spot: false,
                    group: 0,
                    price_per_hour: on_demand_price,
                });
            }
        }
        FleetStrategy::SpotMix { groups, max_bid } => {
            assert!(groups > 0);
            let (lo, hi) = SPOT_CAPACITY_RANGE;
            let capacity = lo
                + (to_unit(hash_msg(seed, 0xF1EE7, nodes as u64, 0)) * (hi - lo + 1) as f64)
                    as usize;
            let bid_ok = EC2_SPOT_NODE_HOUR <= max_bid;
            for i in 0..nodes {
                let spot = bid_ok && i < capacity;
                out.push(NodeAllocation {
                    spot,
                    group: i % groups,
                    price_per_hour: if spot {
                        EC2_SPOT_NODE_HOUR
                    } else {
                        on_demand_price
                    },
                });
            }
        }
    }
    FleetAllocation {
        nodes: out,
        strategy,
    }
}

impl FleetAllocation {
    /// Number of instances.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the fleet is empty (never for acquired fleets).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Instances acquired via spot requests.
    pub fn spot_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.spot).count()
    }

    /// Indices (node ids in the induced topology) of the spot instances —
    /// the nodes a market revocation removes.
    pub fn spot_node_indices(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.spot)
            .map(|(i, _)| i)
            .collect()
    }

    /// Real dollars per hour for the whole fleet.
    pub fn hourly_cost(&self) -> f64 {
        self.nodes.iter().map(|n| n.price_per_hour).sum()
    }

    /// Real dollars for holding the fleet `seconds`.
    pub fn cost(&self, seconds: f64) -> f64 {
        self.hourly_cost() * seconds / 3600.0
    }

    /// The cluster topology induced by the fleet's placement groups.
    pub fn topology(&self, cores_per_node: usize) -> ClusterTopology {
        ClusterTopology::with_groups(cores_per_node, self.nodes.iter().map(|n| n.group).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_demand_fleet_is_uniform() {
        let f = acquire_fleet(63, FleetStrategy::OnDemandSingleGroup, 2.40, 1);
        assert_eq!(f.len(), 63);
        assert_eq!(f.spot_count(), 0);
        assert!((f.hourly_cost() - 63.0 * 2.40).abs() < 1e-9);
        assert_eq!(f.topology(16).groups_in_use(63), 1);
    }

    #[test]
    fn spot_mix_never_fills_large_fleets_with_spot_alone() {
        // The paper's experience: some on-demand top-up is always needed,
        // but spot still dominates the fleet.
        for seed in 0..100 {
            let f = acquire_fleet(
                63,
                FleetStrategy::SpotMix {
                    groups: 4,
                    max_bid: 1.0,
                },
                2.40,
                seed,
            );
            assert!(f.spot_count() < 63, "seed {seed} filled entirely from spot");
            assert!(f.spot_count() >= 40, "seed {seed}: {}", f.spot_count());
        }
        // Small fleets do fill from spot alone.
        let small = acquire_fleet(
            8,
            FleetStrategy::SpotMix {
                groups: 4,
                max_bid: 1.0,
            },
            2.40,
            1,
        );
        assert_eq!(small.spot_count(), 8);
    }

    #[test]
    fn mix_is_much_cheaper() {
        let full = acquire_fleet(63, FleetStrategy::OnDemandSingleGroup, 2.40, 3);
        let mix = acquire_fleet(
            63,
            FleetStrategy::SpotMix {
                groups: 4,
                max_bid: 1.0,
            },
            2.40,
            3,
        );
        let ratio = full.hourly_cost() / mix.hourly_cost();
        assert!(ratio > 1.8, "ratio = {ratio}");
        // The paper's "est. cost" column prices the whole fleet at the spot
        // rate: a ~4.4x saving.
        let est_ratio = 2.40 / EC2_SPOT_NODE_HOUR;
        assert!((est_ratio - 4.44).abs() < 0.05);
    }

    #[test]
    fn low_bid_gets_no_spot_instances() {
        let f = acquire_fleet(
            10,
            FleetStrategy::SpotMix {
                groups: 4,
                max_bid: 0.10,
            },
            2.40,
            1,
        );
        assert_eq!(f.spot_count(), 0);
        assert!((f.hourly_cost() - 24.0).abs() < 1e-9);
    }

    #[test]
    fn mix_topology_spans_groups() {
        let f = acquire_fleet(
            8,
            FleetStrategy::SpotMix {
                groups: 4,
                max_bid: 1.0,
            },
            2.40,
            9,
        );
        let topo = f.topology(16);
        assert_eq!(topo.groups_in_use(8), 4);
    }

    #[test]
    fn acquisition_is_deterministic() {
        let a = acquire_fleet(
            20,
            FleetStrategy::SpotMix {
                groups: 4,
                max_bid: 1.0,
            },
            2.40,
            7,
        );
        let b = acquire_fleet(
            20,
            FleetStrategy::SpotMix {
                groups: 4,
                max_bid: 1.0,
            },
            2.40,
            7,
        );
        assert_eq!(a, b);
    }
}
