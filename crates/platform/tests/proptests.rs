//! Property-based tests of the platform models' invariants.

use hetero_platform::catalog;
use hetero_platform::cost::{Billing, CostModel};
use hetero_platform::limits::ExecutionLimits;
use hetero_platform::provision::{environment_of, plan};
use hetero_platform::scheduler::QueueModel;
use hetero_platform::spot::{acquire_fleet, FleetStrategy};
use proptest::prelude::*;

proptest! {
    #[test]
    fn costs_scale_linearly_in_time(
        rate in 0.001f64..5.0,
        ranks in 1usize..2000,
        t in 1.0f64..1e5,
        k in 1.0f64..10.0,
    ) {
        for billing in [
            Billing::PerCoreHour(rate),
            Billing::EstimatedPerCoreHour(rate),
            Billing::PerNodeHour { rate, cores_per_node: 16 },
        ] {
            let m = CostModel { billing, note: String::new() };
            let c1 = m.cost(ranks, t);
            let ck = m.cost(ranks, k * t);
            prop_assert!((ck - k * c1).abs() < 1e-9 * ck.max(1.0));
        }
    }

    #[test]
    fn whole_node_billing_dominates_per_core(
        ranks in 1usize..2000,
        t in 1.0f64..1e4,
    ) {
        // Charging whole 16-core nodes at 16x the core rate never costs
        // less than charging exactly the cores used.
        let core = CostModel { billing: Billing::PerCoreHour(0.15), note: String::new() };
        let node = CostModel {
            billing: Billing::PerNodeHour { rate: 16.0 * 0.15, cores_per_node: 16 },
            note: String::new(),
        };
        prop_assert!(node.cost(ranks, t) >= core.cost(ranks, t) - 1e-9);
        // And they agree exactly on full nodes.
        let full = (ranks.div_ceil(16)) * 16;
        prop_assert!((node.cost(full, t) - core.cost(full, t)).abs() < 1e-9);
    }

    #[test]
    fn cost_is_monotone_in_ranks(ranks in 1usize..999, t in 1.0f64..1e4) {
        for p in catalog::all_platforms() {
            prop_assert!(p.cost_of(ranks + 1, t) >= p.cost_of(ranks, t) - 1e-12, "{}", p.key);
        }
    }

    #[test]
    fn limits_are_monotone_in_ranks(
        max_cores in 1usize..2000,
        launch in 1usize..2000,
        ranks in 1usize..2000,
    ) {
        let l = ExecutionLimits {
            max_cores,
            max_launchable_ranks: Some(launch),
            adapter_volume_cap: None,
        };
        // If a size is rejected, every larger size is rejected too.
        if l.check(ranks, 0.0).is_err() {
            prop_assert!(l.check(ranks + 1, 0.0).is_err());
        }
    }

    #[test]
    fn queue_wait_is_deterministic_positive_and_monotone_in_nodes(
        base in 0.0f64..1e4,
        per_node in 0.0f64..100.0,
        spread in 0.0f64..2.0,
        nodes in 1usize..128,
        seed in 0u64..100,
    ) {
        let q = QueueModel { base, per_node, spread, size_exponent: 1.1 };
        let w = q.wait_seconds(nodes, seed);
        prop_assert!(w >= 0.0);
        prop_assert_eq!(w, q.wait_seconds(nodes, seed));
        // With spread 0 the model is strictly monotone in node count.
        let q0 = QueueModel { spread: 0.0, ..q };
        prop_assert!(q0.wait_seconds(nodes + 1, seed) >= q0.wait_seconds(nodes, seed));
    }

    #[test]
    fn fleets_have_exact_size_and_priced_nodes(
        nodes in 1usize..100,
        groups in 1usize..8,
        seed in 0u64..50,
    ) {
        let f = acquire_fleet(nodes, FleetStrategy::SpotMix { groups, max_bid: 1.0 }, 2.40, seed);
        prop_assert_eq!(f.len(), nodes);
        for n in &f.nodes {
            prop_assert!(n.group < groups);
            let expect = if n.spot { 0.54 } else { 2.40 };
            prop_assert_eq!(n.price_per_hour, expect);
        }
        // Hourly cost is between all-spot and all-on-demand.
        prop_assert!(f.hourly_cost() >= 0.54 * nodes as f64 - 1e-9);
        prop_assert!(f.hourly_cost() <= 2.40 * nodes as f64 + 1e-9);
        // Topology round-trips the group structure.
        let topo = f.topology(16);
        prop_assert_eq!(topo.num_nodes(), nodes);
    }

    #[test]
    fn acquisition_is_deterministic_per_strategy_nodes_seed(
        nodes in 1usize..100,
        groups in 1usize..8,
        bid_cents in 10u32..300,
        seed in 0u64..50,
    ) {
        let bid = bid_cents as f64 / 100.0;
        for strategy in [
            FleetStrategy::OnDemandSingleGroup,
            FleetStrategy::SpotMix { groups, max_bid: bid },
        ] {
            let a = acquire_fleet(nodes, strategy, 2.40, seed);
            let b = acquire_fleet(nodes, strategy, 2.40, seed);
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn on_demand_top_up_fills_the_fleet_exactly(
        nodes in 1usize..150,
        groups in 1usize..8,
        seed in 0u64..50,
    ) {
        // Whatever the spot market hands out, the on-demand top-up brings
        // the fleet to exactly the requested size — never short, never over.
        let f = acquire_fleet(nodes, FleetStrategy::SpotMix { groups, max_bid: 1.0 }, 2.40, seed);
        prop_assert_eq!(f.len(), nodes);
        let on_demand = f.len() - f.spot_count();
        prop_assert_eq!(f.spot_count() + on_demand, nodes);
        // The spot share and its node indices agree.
        prop_assert_eq!(f.spot_node_indices().len(), f.spot_count());
    }

    #[test]
    fn spot_never_fills_beyond_capacity(nodes in 61usize..100, seed in 0u64..50) {
        let f = acquire_fleet(nodes, FleetStrategy::SpotMix { groups: 4, max_bid: 1.0 }, 2.40, seed);
        prop_assert!(f.spot_count() <= 60, "spot {} of {nodes}", f.spot_count());
        prop_assert!(f.spot_count() >= 40);
    }

    #[test]
    fn provisioning_plans_are_stable_and_nonnegative(key_pick in 0usize..4) {
        let key = ["puma", "ellipse", "lagrange", "ec2"][key_pick];
        let env = environment_of(key).unwrap();
        let a = plan(&env).unwrap();
        let b = plan(&env).unwrap();
        prop_assert_eq!(a.total_hours(), b.total_hours());
        prop_assert!(a.total_hours() >= 0.0);
        for s in &a.steps {
            prop_assert!(s.hours >= 0.0);
        }
    }

    #[test]
    fn topologies_respect_node_limits(ranks in 1usize..1009) {
        for p in catalog::all_platforms() {
            if ranks <= p.total_cores() {
                let topo = p.topology(ranks);
                prop_assert!(topo.num_nodes() <= p.max_nodes);
                prop_assert!(topo.total_cores() >= ranks);
                prop_assert_eq!(topo.cores_per_node(), p.cores_per_node);
            }
        }
    }
}
