//! The content-addressed result cache: durable, verifiable, atomic.
//!
//! Artifacts live one-per-key in the cache directory, named by the hash
//! part of the canonical key (`<64-hex>.json`). Each artifact is a small
//! JSON envelope holding the full key, the compact-JSON text of the
//! outcome, and the SHA-256 of that text:
//!
//! ```json
//! {"schema":"hetero-serve/artifact/v1",
//!  "key":"hetero-serve/key/v1/<hex>",
//!  "content_hash":"<sha256 of the outcome text>",
//!  "outcome":"<compact JSON, embedded as a string>"}
//! ```
//!
//! Storing the outcome as *text* (not a nested JSON value) makes integrity
//! checking exact: the hash covers the precise bytes that will be parsed
//! back, so verification never depends on JSON re-encoding being stable.
//!
//! Two failure-containment rules (the fix-forward satellite of this PR):
//!
//! * **atomic writes** — artifacts are written to a `.tmp` sibling and
//!   `rename`d into place, so a crash mid-write leaves either the old
//!   artifact or none, never a half-written one;
//! * **quarantine, don't crash** — an artifact whose schema, key, or
//!   content hash does not verify is moved into `quarantine/` and treated
//!   as a miss. Corruption costs one re-execution, never an outage, and
//!   the quarantined bytes survive for diagnosis.

use crate::service::JobOutcome;
use hetero_hpc::canon::sha256_hex;
use serde::{Deserialize as _, Value};
use std::collections::HashSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Envelope schema tag; bump when the envelope layout changes.
pub const ARTIFACT_SCHEMA: &str = "hetero-serve/artifact/v1";

/// What a cache probe found.
#[derive(Debug)]
pub enum CacheLookup {
    /// A verified artifact; the outcome is byte-identical to the execution
    /// that produced it. Boxed: an outcome is two orders of magnitude
    /// larger than the other variants.
    Hit(Box<JobOutcome>),
    /// No artifact for this key.
    Miss,
    /// An artifact existed but failed verification and was quarantined.
    Quarantined,
}

/// The on-disk artifact store plus its in-memory key index.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    /// Hash parts (file stems) present on disk.
    index: HashSet<String>,
}

impl ResultCache {
    /// Opens the cache at `dir`, creating it if needed, and indexes the
    /// artifacts already present.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn open(dir: &Path) -> io::Result<ResultCache> {
        fs::create_dir_all(dir)?;
        let mut index = HashSet::new();
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "json") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    index.insert(stem.to_string());
                }
            }
        }
        Ok(ResultCache {
            dir: dir.to_path_buf(),
            index,
        })
    }

    /// Number of indexed artifacts.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the cache holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Probes the cache for `key`, verifying any artifact found.
    pub fn get(&mut self, key: &str) -> CacheLookup {
        let stem = match key_stem(key) {
            Some(s) => s,
            None => return CacheLookup::Miss,
        };
        if !self.index.contains(stem) {
            return CacheLookup::Miss;
        }
        let path = self.artifact_path(stem);
        match load_verified(&path, key) {
            Some(outcome) => CacheLookup::Hit(Box::new(outcome)),
            None => {
                self.quarantine(stem);
                CacheLookup::Quarantined
            }
        }
    }

    /// Stores `outcome` under `key` via temp-file + atomic rename. The
    /// artifact is durable when this returns.
    ///
    /// # Errors
    /// Propagates filesystem errors; the cache index is unchanged on error.
    pub fn store(&mut self, key: &str, outcome: &JobOutcome) -> io::Result<()> {
        let stem = key_stem(key)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "malformed cache key"))?
            .to_string();
        let text = serde_json::to_string(outcome).expect("JobOutcome serializes infallibly");
        let envelope = Value::Object(vec![
            (
                "schema".to_string(),
                Value::String(ARTIFACT_SCHEMA.to_string()),
            ),
            ("key".to_string(), Value::String(key.to_string())),
            (
                "content_hash".to_string(),
                Value::String(sha256_hex(text.as_bytes())),
            ),
            ("outcome".to_string(), Value::String(text)),
        ]);
        let body = serde_json::to_string(&envelope).expect("a Value serializes infallibly");
        let path = self.artifact_path(&stem);
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, body.as_bytes())?;
        fs::rename(&tmp, &path)?;
        self.index.insert(stem);
        Ok(())
    }

    fn artifact_path(&self, stem: &str) -> PathBuf {
        self.dir.join(format!("{stem}.json"))
    }

    /// Moves a failed artifact into `quarantine/`, preserving its bytes
    /// for diagnosis. Best-effort: if even the move fails, the artifact is
    /// deleted so it cannot be probed again.
    fn quarantine(&mut self, stem: &str) {
        let path = self.artifact_path(stem);
        let qdir = self.dir.join("quarantine");
        let moved = fs::create_dir_all(&qdir)
            .and_then(|()| fs::rename(&path, qdir.join(format!("{stem}.json"))));
        if moved.is_err() {
            let _ = fs::remove_file(&path);
        }
        self.index.remove(stem);
    }
}

/// The hash part of a canonical key (`.../<64-hex>` → `<64-hex>`), used as
/// the artifact file stem. Rejects anything that does not look like one,
/// so a hostile key cannot traverse paths.
fn key_stem(key: &str) -> Option<&str> {
    let stem = key.rsplit('/').next()?;
    (stem.len() == 64 && stem.bytes().all(|b| b.is_ascii_hexdigit())).then_some(stem)
}

/// Loads and fully verifies one artifact; `None` on any mismatch.
fn load_verified(path: &Path, key: &str) -> Option<JobOutcome> {
    let body = fs::read_to_string(path).ok()?;
    let v: Value = serde_json::from_str(&body).ok()?;
    if v.field("schema").as_str() != Some(ARTIFACT_SCHEMA) {
        return None;
    }
    if v.field("key").as_str() != Some(key) {
        return None;
    }
    let text = v.field("outcome").as_str()?;
    if v.field("content_hash").as_str() != Some(sha256_hex(text.as_bytes()).as_str()) {
        return None;
    }
    let outcome: Value = serde_json::from_str(text).ok()?;
    JobOutcome::deserialize_value(&outcome).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_hpc::{execute, App, RunRequest};
    use hetero_platform::catalog;

    fn tdir(name: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("hetero-serve-cache-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn outcome() -> JobOutcome {
        let req = RunRequest::new(catalog::puma(), App::smoke_rd(2), 8, 3);
        JobOutcome::Completed(execute(&req).unwrap())
    }

    const KEY: &str =
        "hetero-serve/key/v1/0000000000000000000000000000000000000000000000000000000000000abc";

    #[test]
    fn store_then_get_roundtrips_bytes() {
        let dir = tdir("roundtrip");
        let mut cache = ResultCache::open(&dir).unwrap();
        let out = outcome();
        cache.store(KEY, &out).unwrap();
        // A fresh cache (fresh index) sees the artifact too.
        let mut cache2 = ResultCache::open(&dir).unwrap();
        match cache2.get(KEY) {
            CacheLookup::Hit(hit) => {
                assert_eq!(
                    serde_json::to_string(hit.as_ref()).unwrap(),
                    serde_json::to_string(&out).unwrap(),
                );
            }
            other => panic!("expected hit, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_artifact_is_quarantined_not_served() {
        let dir = tdir("quarantine");
        let mut cache = ResultCache::open(&dir).unwrap();
        cache.store(KEY, &outcome()).unwrap();
        // Flip a byte inside the stored outcome text.
        let stem = key_stem(KEY).unwrap();
        let path = dir.join(format!("{stem}.json"));
        let mut bytes = fs::read(&path).unwrap();
        let pos = bytes.len() / 2;
        bytes[pos] = if bytes[pos] == b'7' { b'8' } else { b'7' };
        fs::write(&path, &bytes).unwrap();

        let mut cache = ResultCache::open(&dir).unwrap();
        assert!(matches!(cache.get(KEY), CacheLookup::Quarantined));
        // The bad artifact moved aside; subsequent probes are plain misses.
        assert!(matches!(cache.get(KEY), CacheLookup::Miss));
        assert!(dir.join("quarantine").join(format!("{stem}.json")).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_key_in_envelope_is_rejected() {
        let dir = tdir("wrongkey");
        let mut cache = ResultCache::open(&dir).unwrap();
        cache.store(KEY, &outcome()).unwrap();
        // Same artifact probed under a different (but same-stem-length) key
        // cannot happen by construction; instead rewrite the stored key.
        let stem = key_stem(KEY).unwrap();
        let path = dir.join(format!("{stem}.json"));
        let body = fs::read_to_string(&path).unwrap();
        fs::write(&path, body.replace("key/v1/0000", "key/v9/0000")).unwrap();
        let mut cache = ResultCache::open(&dir).unwrap();
        assert!(matches!(cache.get(KEY), CacheLookup::Quarantined));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_tmp_files_left_behind() {
        let dir = tdir("tmp");
        let mut cache = ResultCache::open(&dir).unwrap();
        cache.store(KEY, &outcome()).unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
