//! The append-only job journal: crash-safe intent and acknowledgement.
//!
//! Every accepted submission appends a `submit` record *before* the job is
//! queued; every durably cached result appends an `ack`; a job that dies
//! (panic in the engine) appends a `fail`. On startup the journal is
//! replayed: submits without a matching ack/fail are the service's pending
//! work, everything else is history. Replay then *compacts* the log —
//! rewrites it with only the pending submits, via temp-file + atomic
//! rename — so the journal stays proportional to the backlog, not to the
//! service's lifetime.
//!
//! ## Framing
//!
//! One record per line: `<16-hex FNV-1a-64 of body> <body>\n`, where the
//! body is a compact JSON object. The checksum is computed over the raw
//! body bytes as written, so replay never depends on JSON re-encoding
//! being byte-stable. A torn tail (partial last line after a crash) or any
//! corrupted line stops replay at that point: everything before the first
//! bad line is trusted, everything after is discarded. Records are
//! self-describing (`"type"` field), and the full request rides in the
//! submit record, so replay needs no state beyond the log itself.

use hetero_hpc::RunRequest;
use serde::{Deserialize as _, Value};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// FNV-1a 64-bit over `data` — the journal's line checksum. Not
/// cryptographic (the cache's artifacts carry SHA-256); it only needs to
/// catch torn writes and bit rot on a line the service itself wrote.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A journaled submission that was never acknowledged: the unit of
/// crash recovery.
#[derive(Debug, Clone)]
pub struct PendingJob {
    /// Journal-assigned job id (monotonic across restarts).
    pub id: u64,
    /// Canonical cache key of the request.
    pub key: String,
    /// The full request, reconstructed from the submit record.
    pub request: RunRequest,
}

/// The append-only journal file plus its write handle.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    fsync: bool,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, replays it, compacts it,
    /// and returns the write handle, the pending jobs, and the next free
    /// job id.
    ///
    /// # Errors
    /// Propagates filesystem errors; corrupted journal *content* is never
    /// an error (replay stops at the first bad line).
    pub fn open(path: &Path, fsync: bool) -> io::Result<(Journal, Vec<PendingJob>, u64)> {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let (pending, next_id) = replay(&text);

        // Compaction: rewrite with only the pending submits, atomically.
        let mut compact = String::new();
        for job in &pending {
            compact.push_str(&frame(&submit_body(job.id, &job.key, &job.request)));
        }
        let tmp = tmp_sibling(path);
        fs::write(&tmp, compact.as_bytes())?;
        fs::rename(&tmp, path)?;

        let file = OpenOptions::new().append(true).open(path)?;
        Ok((
            Journal {
                path: path.to_path_buf(),
                file,
                fsync,
            },
            pending,
            next_id,
        ))
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends a `submit` record: the service now owes this job a result.
    ///
    /// # Errors
    /// Propagates filesystem errors; the caller must not queue the job if
    /// the append failed.
    pub fn append_submit(&mut self, id: u64, key: &str, request: &RunRequest) -> io::Result<()> {
        self.append(&submit_body(id, key, request))
    }

    /// Appends an `ack` record: the job's result is durably cached.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn append_ack(&mut self, id: u64) -> io::Result<()> {
        self.append(&format!("{{\"type\":\"ack\",\"job\":{id}}}"))
    }

    /// Appends a `fail` record: the job died (engine panic) and will not
    /// be retried.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn append_fail(&mut self, id: u64, error: &str) -> io::Result<()> {
        let body = serde_json::to_string(&Value::Object(vec![
            ("type".to_string(), Value::String("fail".to_string())),
            ("job".to_string(), Value::Int(i128::from(id))),
            ("error".to_string(), Value::String(error.to_string())),
        ]))
        .expect("a Value serializes infallibly");
        self.append(&body)
    }

    fn append(&mut self, body: &str) -> io::Result<()> {
        self.file.write_all(frame(body).as_bytes())?;
        if self.fsync {
            self.file.sync_data()?;
        }
        Ok(())
    }
}

fn frame(body: &str) -> String {
    format!("{:016x} {body}\n", fnv1a64(body.as_bytes()))
}

fn submit_body(id: u64, key: &str, request: &RunRequest) -> String {
    serde_json::to_string(&Value::Object(vec![
        ("type".to_string(), Value::String("submit".to_string())),
        ("job".to_string(), Value::Int(i128::from(id))),
        ("key".to_string(), Value::String(key.to_string())),
        (
            "request".to_string(),
            serde_json::to_value(request).expect("RunRequest serializes infallibly"),
        ),
    ]))
    .expect("a Value serializes infallibly")
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Replays journal text: pending submits (in submission order) and the
/// next free job id. Stops at the first line whose checksum or JSON does
/// not verify — the torn tail of a crashed append.
fn replay(text: &str) -> (Vec<PendingJob>, u64) {
    let mut pending: Vec<PendingJob> = Vec::new();
    let mut next_id: u64 = 0;
    for line in text.split_inclusive('\n') {
        // A line without its trailing newline is a torn append.
        let Some(line) = line.strip_suffix('\n') else {
            break;
        };
        let Some((crc_hex, body)) = line.split_once(' ') else {
            break;
        };
        let Ok(crc) = u64::from_str_radix(crc_hex, 16) else {
            break;
        };
        if crc != fnv1a64(body.as_bytes()) {
            break;
        }
        let Ok(v) = serde_json::from_str::<Value>(body) else {
            break;
        };
        let Some(id) = v.field("job").as_u64() else {
            break;
        };
        next_id = next_id.max(id + 1);
        match v.field("type").as_str() {
            Some("submit") => {
                let Some(key) = v.field("key").as_str() else {
                    break;
                };
                let Ok(request) = RunRequest::deserialize_value(v.field("request")) else {
                    break;
                };
                pending.push(PendingJob {
                    id,
                    key: key.to_string(),
                    request,
                });
            }
            Some("ack") | Some("fail") => {
                pending.retain(|p| p.id != id);
            }
            _ => break,
        }
    }
    (pending, next_id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_hpc::App;
    use hetero_platform::catalog;

    fn tdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "hetero-serve-journal-{name}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn req() -> RunRequest {
        RunRequest::new(catalog::puma(), App::smoke_rd(2), 8, 3)
    }

    #[test]
    fn submit_ack_cycle_leaves_nothing_pending() {
        let dir = tdir("ack");
        let path = dir.join("journal.log");
        let (mut j, pending, next) = Journal::open(&path, false).unwrap();
        assert!(pending.is_empty());
        assert_eq!(next, 0);
        j.append_submit(0, "k0", &req()).unwrap();
        j.append_submit(1, "k1", &req()).unwrap();
        j.append_ack(0).unwrap();
        drop(j);
        let (_j, pending, next) = Journal::open(&path, false).unwrap();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].id, 1);
        assert_eq!(pending[0].key, "k1");
        assert_eq!(next, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_discarded_not_fatal() {
        let dir = tdir("torn");
        let path = dir.join("journal.log");
        let (mut j, _, _) = Journal::open(&path, false).unwrap();
        j.append_submit(0, "k0", &req()).unwrap();
        j.append_submit(1, "k1", &req()).unwrap();
        drop(j);
        // Simulate a crash mid-append: chop the last line in half.
        let text = fs::read_to_string(&path).unwrap();
        let keep = text.len() - 40;
        fs::write(&path, &text.as_bytes()[..keep]).unwrap();
        let (_j, pending, next) = Journal::open(&path, false).unwrap();
        assert_eq!(pending.len(), 1, "first record survives, torn one dropped");
        assert_eq!(pending[0].id, 0);
        assert_eq!(next, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_line_stops_replay() {
        let dir = tdir("corrupt");
        let path = dir.join("journal.log");
        let (mut j, _, _) = Journal::open(&path, false).unwrap();
        j.append_submit(0, "k0", &req()).unwrap();
        j.append_submit(1, "k1", &req()).unwrap();
        j.append_submit(2, "k2", &req()).unwrap();
        drop(j);
        // Flip a byte inside the second record's body.
        let mut bytes = fs::read(&path).unwrap();
        let first_nl = bytes.iter().position(|&b| b == b'\n').unwrap();
        bytes[first_nl + 30] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let (_j, pending, _) = Journal::open(&path, false).unwrap();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].id, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_shrinks_the_log_and_preserves_requests() {
        let dir = tdir("compact");
        let path = dir.join("journal.log");
        let (mut j, _, _) = Journal::open(&path, false).unwrap();
        for i in 0..20 {
            j.append_submit(i, &format!("k{i}"), &req()).unwrap();
            if i != 7 {
                j.append_ack(i).unwrap();
            }
        }
        drop(j);
        let before = fs::metadata(&path).unwrap().len();
        let (_j, pending, next) = Journal::open(&path, false).unwrap();
        let after = fs::metadata(&path).unwrap().len();
        assert!(after < before / 10, "compacted {before} -> {after}");
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].id, 7);
        assert_eq!(next, 20);
        // The replayed request round-tripped intact.
        assert_eq!(pending[0].request.ranks, 8);
        assert_eq!(pending[0].request.per_rank_axis, 3);
        let _ = fs::remove_dir_all(&dir);
    }
}
