//! # hetero-serve
//!
//! A long-running, multi-tenant campaign service over the `hetero-hpc`
//! engines. Where the rest of the workspace runs one experiment per
//! process invocation, this crate keeps a service alive across many
//! submissions — the shape the paper's resource-selection story implies
//! once a group shares one harness: many users, overlapping requests,
//! repeated sweeps over the same platform ladder.
//!
//! Three cooperating pieces (see `DESIGN.md` §11):
//!
//! * a **persistent job queue** ([`journal`]): every accepted submission
//!   is journaled to an append-only on-disk log before it is queued, and
//!   acknowledged in the same log when its result is durably cached. A
//!   restarted service replays the log and finishes exactly the work that
//!   was pending — no acked job is lost, no completed unique key is
//!   re-executed;
//! * a **worker pool** ([`service`]): N OS threads drain the queue
//!   concurrently through [`hetero_hpc::execute`] /
//!   [`hetero_hpc::recovery::execute_resilient`], with per-job panic
//!   isolation (a panicking job fails *that job*, not the service) and
//!   graceful drain on shutdown;
//! * a **content-addressed result cache** ([`cache`]): outcomes are stored
//!   under the canonical key of [`hetero_hpc::canon`] as compact-JSON
//!   artifacts written via temp-file + atomic rename, each carrying its
//!   own content hash. Because every engine in the workspace is a pure
//!   function of the request, a cache hit returns a byte-identical
//!   outcome at microsecond latency; artifacts whose stored hash does not
//!   match their content are quarantined, never served and never fatal.
//!
//! Duplicate submissions coalesce: concurrent requests for the same key
//! share one in-flight execution, and queued requests for the same
//! (platform, ranks, mesh) shape batch onto one worker dispatch.
//!
//! ```no_run
//! use hetero_hpc::{App, RunRequest};
//! use hetero_platform::catalog;
//! use hetero_serve::{ServeConfig, ServeHandle};
//!
//! let serve = ServeHandle::open(ServeConfig::new("/tmp/serve-state")).unwrap();
//! let req = RunRequest::new(catalog::puma(), App::paper_rd(3), 8, 3);
//! let cold = serve.submit_wait(&req).unwrap(); // executes
//! let hot = serve.submit_wait(&req).unwrap();  // cache hit, byte-identical
//! # let _ = (cold, hot);
//! serve.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod journal;
pub mod service;

pub use cache::{CacheLookup, ResultCache};
pub use journal::{Journal, PendingJob};
pub use service::{JobId, JobOutcome, ServeConfig, ServeError, ServeHandle};
