//! The service: submission front door, dedup/batch scheduler, worker
//! pool, and the transactional completion protocol.
//!
//! ## Life of a submission
//!
//! 1. the request is **normalized** (its `trace` spec is stripped —
//!    cached outcomes never carry traces, and tracing never perturbs the
//!    measured report) and its canonical key computed;
//! 2. the **cache** is probed. A verified hit completes the job
//!    immediately — microseconds, no journal traffic, byte-identical to
//!    cold execution;
//! 3. on a miss the job is **journaled** (`submit` record, durable before
//!    the job is visible to workers), then either **coalesced** onto an
//!    already-in-flight execution of the same key or enqueued;
//! 4. a worker claims the queue head plus any queued jobs of the same
//!    *batch shape* — same platform key, rank count, and per-rank mesh —
//!    up to `batch_max`, and executes them back to back;
//! 5. completion is transactional, in this order: write the cache
//!    artifact (temp file + atomic rename), then append `ack` records for
//!    every coalesced submission, then wake waiters. A crash between
//!    artifact and ack merely replays the job into a cache hit at next
//!    startup — re-acked without re-execution. A crash before the
//!    artifact replays into a real re-execution, which is safe because
//!    every engine is a pure function of the request.
//!
//! A panicking job (engine bug) is caught per job: it appends a `fail`
//! record, reports the panic to its waiters, and the worker moves on.

use crate::cache::{CacheLookup, ResultCache};
use crate::journal::{Journal, PendingJob};
use hetero_hpc::canon::prep_key;
use hetero_hpc::canon::request_key;
use hetero_hpc::prep::{scenario_for, PreparedScenario};
use hetero_hpc::recovery::execute_resilient_with_prep;
use hetero_hpc::{execute_with_prep, ResilienceOutcome, RunOutcome, RunRequest};
use hetero_platform::limits::LimitViolation;
use hetero_trace::MetricsRegistry;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Identifies one accepted submission (unique across service restarts on
/// the same state directory).
pub type JobId = u64;

/// What a job produced. All three arms are deterministic functions of the
/// request, so all three are cacheable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum JobOutcome {
    /// A plain run (no resilience spec) that executed within limits.
    Completed(RunOutcome),
    /// A resilient campaign (request carried a [`hetero_hpc::ResilienceSpec`]).
    Resilient(ResilienceOutcome),
    /// The platform refused the request (capacity, launcher, or adapter
    /// limits) — the paper's observed failure modes, served from cache
    /// like any other deterministic outcome.
    Rejected(LimitViolation),
}

/// Why a submission or wait failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
    /// The job's execution panicked; the payload is the panic message.
    JobPanicked(String),
    /// A journal or cache write failed; the payload is the I/O error text.
    Io(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::JobPanicked(msg) => write!(f, "job panicked: {msg}"),
            ServeError::Io(msg) => write!(f, "journal/cache I/O failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Configuration of one service instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// State directory: holds `journal.log` and the `cache/` artifacts.
    pub dir: PathBuf,
    /// Worker threads executing jobs concurrently.
    pub workers: usize,
    /// Whether journal appends fsync before returning. Off by default:
    /// the tests and demo value latency, a production deployment of the
    /// simulation service would turn it on.
    pub fsync: bool,
    /// Upper bound on jobs dispatched to one worker as a batch.
    pub batch_max: usize,
}

impl ServeConfig {
    /// A config with 2 workers, batching up to 4, no fsync.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            dir: dir.into(),
            workers: 2,
            fsync: false,
            batch_max: 4,
        }
    }

    /// Replaces the worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Replaces the batch bound.
    #[must_use]
    pub fn with_batch_max(mut self, batch_max: usize) -> Self {
        self.batch_max = batch_max.max(1);
        self
    }

    /// Enables fsync on journal appends.
    #[must_use]
    pub fn with_fsync(mut self) -> Self {
        self.fsync = true;
        self
    }
}

/// One queued unique-key execution.
struct QueuedJob {
    key: String,
    request: RunRequest,
}

/// The batch shape: queued jobs agreeing on every coordinate ride to a
/// worker together (one dispatch, shared scheduling overhead — the
/// service-level analogue of the paper's "same platform, same size"
/// sweep columns). Besides the platform/size coordinates this folds in
/// the `hetero-prep/key/v1` sub-key — so every job of a batch shares one
/// [`PreparedScenario`] resolution — and the solver-variant/kernel-backend
/// overrides, which the prep key deliberately excludes: two jobs differing
/// only in operator path must not claim-group as interchangeable work.
fn batch_shape(req: &RunRequest) -> (String, String, usize, usize, String, String) {
    (
        prep_key(req),
        req.platform.key.clone(),
        req.ranks,
        req.per_rank_axis,
        format!("{:?}", req.solver_variant),
        format!("{:?}", req.kernel_backend),
    )
}

struct State {
    journal: Journal,
    cache: ResultCache,
    queue: VecDeque<QueuedJob>,
    /// key → job ids waiting on the in-flight (queued or executing)
    /// execution of that key.
    inflight: HashMap<String, Vec<JobId>>,
    done: HashMap<JobId, Result<Arc<JobOutcome>, ServeError>>,
    metrics: MetricsRegistry,
    next_job: JobId,
    /// Set by `shutdown`: stop accepting, drain the queue, exit.
    draining: bool,
    /// Set by `kill`: stop accepting, abandon the queue, exit.
    abandoned: bool,
    /// Jobs replayed from the journal at startup.
    recovered: Vec<JobId>,
}

struct Shared {
    state: Mutex<State>,
    work: Condvar,
    completion: Condvar,
}

/// Handle to a running service instance. Dropping it without calling
/// [`ServeHandle::shutdown`] or [`ServeHandle::kill`] drains like
/// `shutdown`.
pub struct ServeHandle {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeHandle {
    /// Opens the service over `config.dir`: replays the journal, re-acks
    /// pending jobs whose results are already cached, re-enqueues the
    /// rest, and starts the worker pool.
    ///
    /// # Errors
    /// Propagates filesystem errors from the journal or cache.
    pub fn open(config: ServeConfig) -> io::Result<ServeHandle> {
        std::fs::create_dir_all(&config.dir)?;
        let (mut journal, pending, next_job) =
            Journal::open(&config.dir.join("journal.log"), config.fsync)?;
        let mut cache = ResultCache::open(&config.dir.join("cache"))?;

        let mut metrics = MetricsRegistry::new();
        let mut queue = VecDeque::new();
        let mut inflight: HashMap<String, Vec<JobId>> = HashMap::new();
        let mut done = HashMap::new();
        let mut recovered = Vec::new();
        for PendingJob { id, key, request } in pending {
            metrics.add("serve.recovered.replayed", 1.0);
            recovered.push(id);
            // The crash may have hit between artifact and ack: complete
            // from cache without re-executing.
            match cache.get(&key) {
                CacheLookup::Hit(outcome) => {
                    journal.append_ack(id)?;
                    done.insert(id, Ok(Arc::new(*outcome)));
                    metrics.add("serve.recovered.from_cache", 1.0);
                    metrics.add("serve.jobs.completed", 1.0);
                }
                lookup @ (CacheLookup::Quarantined | CacheLookup::Miss) => {
                    if matches!(lookup, CacheLookup::Quarantined) {
                        metrics.add("serve.cache.quarantined", 1.0);
                    }
                    match inflight.entry(key.clone()) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            e.get_mut().push(id);
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(vec![id]);
                            queue.push_back(QueuedJob { key, request });
                        }
                    }
                }
            }
        }

        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                journal,
                cache,
                queue,
                inflight,
                done,
                metrics,
                next_job,
                draining: false,
                abandoned: false,
                recovered,
            }),
            work: Condvar::new(),
            completion: Condvar::new(),
        });

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let batch_max = config.batch_max.max(1);
                std::thread::spawn(move || worker_loop(&shared, batch_max))
            })
            .collect();

        Ok(ServeHandle { shared, workers })
    }

    /// Accepts a request: cache-hit jobs complete before this returns;
    /// misses are journaled and queued (or coalesced onto an in-flight
    /// execution of the same key). Returns the job id to [`wait`] on.
    ///
    /// [`wait`]: ServeHandle::wait
    ///
    /// # Errors
    /// [`ServeError::ShuttingDown`] after [`ServeHandle::shutdown`] /
    /// [`ServeHandle::kill`]; [`ServeError::Io`] if the journal append
    /// failed (the job was not accepted).
    pub fn submit(&self, request: &RunRequest) -> Result<JobId, ServeError> {
        // Normalize: traces are replay artifacts, never cached, and never
        // perturb the report — a traced and an untraced request are the
        // same job.
        let request = RunRequest {
            trace: None,
            ..request.clone()
        };
        let key = request_key(&request);

        let mut st = self.shared.state.lock().expect("serve state poisoned");
        if st.draining || st.abandoned {
            return Err(ServeError::ShuttingDown);
        }
        let id = st.next_job;
        st.next_job += 1;
        st.metrics.add("serve.jobs.submitted", 1.0);

        match st.cache.get(&key) {
            CacheLookup::Hit(outcome) => {
                st.metrics.add("serve.cache.hits", 1.0);
                st.metrics.add("serve.jobs.completed", 1.0);
                st.done.insert(id, Ok(Arc::new(*outcome)));
                self.shared.completion.notify_all();
                return Ok(id);
            }
            CacheLookup::Quarantined => {
                st.metrics.add("serve.cache.quarantined", 1.0);
                st.metrics.add("serve.cache.misses", 1.0);
            }
            CacheLookup::Miss => {
                st.metrics.add("serve.cache.misses", 1.0);
            }
        }

        if let Err(e) = st.journal.append_submit(id, &key, &request) {
            return Err(ServeError::Io(e.to_string()));
        }
        match st.inflight.entry(key.clone()) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                // Same key already queued or executing: coalesce.
                e.get_mut().push(id);
                st.metrics.add("serve.dedup.coalesced", 1.0);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(vec![id]);
                st.queue.push_back(QueuedJob { key, request });
                self.shared.work.notify_one();
            }
        }
        Ok(id)
    }

    /// Blocks until `job` completes and returns its outcome (shared —
    /// coalesced submissions all see the same `Arc`).
    ///
    /// # Errors
    /// [`ServeError::JobPanicked`] if the execution panicked;
    /// [`ServeError::ShuttingDown`] if the service was killed with the
    /// job still pending.
    pub fn wait(&self, job: JobId) -> Result<Arc<JobOutcome>, ServeError> {
        let mut st = self.shared.state.lock().expect("serve state poisoned");
        loop {
            if let Some(result) = st.done.get(&job) {
                return result.clone();
            }
            if st.abandoned {
                return Err(ServeError::ShuttingDown);
            }
            st = self
                .shared
                .completion
                .wait(st)
                .expect("serve state poisoned");
        }
    }

    /// [`submit`](ServeHandle::submit) then [`wait`](ServeHandle::wait).
    ///
    /// # Errors
    /// As for the two halves.
    pub fn submit_wait(&self, request: &RunRequest) -> Result<Arc<JobOutcome>, ServeError> {
        let id = self.submit(request)?;
        self.wait(id)
    }

    /// Job ids replayed from the journal at startup (both re-acked-from-
    /// cache and re-enqueued); [`wait`](ServeHandle::wait) works on them.
    pub fn recovered_jobs(&self) -> Vec<JobId> {
        self.shared
            .state
            .lock()
            .expect("serve state poisoned")
            .recovered
            .clone()
    }

    /// A snapshot of the service counters (`serve.cache.*`,
    /// `serve.dedup.*`, `serve.batch.*`, `serve.jobs.*`,
    /// `serve.recovered.*`).
    pub fn metrics(&self) -> MetricsRegistry {
        self.shared
            .state
            .lock()
            .expect("serve state poisoned")
            .metrics
            .clone()
    }

    /// Graceful drain: stops accepting submissions, lets the workers
    /// finish every queued job, and joins them.
    pub fn shutdown(mut self) {
        self.stop(false);
    }

    /// Simulated crash for recovery testing: stops accepting, abandons
    /// the queue (journaled-but-unexecuted jobs stay pending on disk),
    /// and joins the workers after their current batch. Pending work is
    /// completed by the next [`ServeHandle::open`] on the same directory.
    pub fn kill(mut self) {
        self.stop(true);
    }

    fn stop(&mut self, abandon: bool) {
        {
            let mut st = self.shared.state.lock().expect("serve state poisoned");
            if abandon {
                st.abandoned = true;
            } else {
                st.draining = true;
            }
        }
        self.shared.work.notify_all();
        self.shared.completion.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.stop(false);
        }
    }
}

/// Executes one request, catching panics. Pure: no service state touched
/// (the optional prepared scenario is immutable shared setup — outputs are
/// byte-identical with or without it).
fn run_one(
    request: &RunRequest,
    prep: Option<Arc<PreparedScenario>>,
) -> Result<JobOutcome, String> {
    catch_unwind(AssertUnwindSafe(|| {
        if request.resilience.is_some() {
            match execute_resilient_with_prep(request, prep) {
                Ok(out) => JobOutcome::Resilient(out),
                Err(limit) => JobOutcome::Rejected(limit),
            }
        } else {
            match execute_with_prep(request, prep) {
                Ok(out) => JobOutcome::Completed(out),
                Err(limit) => JobOutcome::Rejected(limit),
            }
        }
    }))
    .map_err(|panic| {
        panic
            .downcast_ref::<&str>()
            .map(ToString::to_string)
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "engine panicked".to_string())
    })
}

fn worker_loop(shared: &Shared, batch_max: usize) {
    loop {
        // Claim a batch: the queue head plus queued jobs of its shape.
        let batch = {
            let mut st = shared.state.lock().expect("serve state poisoned");
            loop {
                if st.abandoned || (st.draining && st.queue.is_empty()) {
                    return;
                }
                if let Some(head) = st.queue.pop_front() {
                    let shape = batch_shape(&head.request);
                    let mut batch = vec![head];
                    let mut rest = VecDeque::new();
                    while let Some(job) = st.queue.pop_front() {
                        if batch.len() < batch_max && batch_shape(&job.request) == shape {
                            batch.push(job);
                        } else {
                            rest.push_back(job);
                        }
                    }
                    st.queue = rest;
                    st.metrics.add("serve.batch.executions", 1.0);
                    st.metrics.add("serve.batch.jobs", batch.len() as f64);
                    break batch;
                }
                st = shared.work.wait(st).expect("serve state poisoned");
            }
        };

        // One prepared-scenario resolution per batch: every job in the
        // batch shares the same prep key by construction, so the whole
        // batch reuses one setup. `None` when sharing is disabled.
        let prep = batch.first().and_then(|job| scenario_for(&job.request));
        for QueuedJob { key, request } in batch {
            // Execute outside the lock: jobs are the slow part.
            let result = run_one(&request, prep.clone());

            let mut st = shared.state.lock().expect("serve state poisoned");
            let waiters = st.inflight.remove(&key).unwrap_or_default();
            match result {
                Ok(outcome) => {
                    // Transactional order — artifact first, acks second:
                    // a crash in between replays into a cache hit.
                    if let Err(e) = st.cache.store(&key, &outcome) {
                        let err = ServeError::Io(e.to_string());
                        for id in &waiters {
                            let _ = st.journal.append_fail(*id, &e.to_string());
                            st.done.insert(*id, Err(err.clone()));
                            st.metrics.add("serve.jobs.failed", 1.0);
                        }
                    } else {
                        let shared_outcome = Arc::new(outcome);
                        for id in &waiters {
                            let _ = st.journal.append_ack(*id);
                            st.done.insert(*id, Ok(Arc::clone(&shared_outcome)));
                            st.metrics.add("serve.jobs.completed", 1.0);
                        }
                    }
                }
                Err(panic_msg) => {
                    for id in &waiters {
                        let _ = st.journal.append_fail(*id, &panic_msg);
                        st.done
                            .insert(*id, Err(ServeError::JobPanicked(panic_msg.clone())));
                        st.metrics.add("serve.jobs.failed", 1.0);
                    }
                }
            }
            drop(st);
            shared.completion.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::batch_shape;
    use hetero_hpc::canon::prep_key;
    use hetero_hpc::{App, RunRequest};
    use hetero_linalg::{KernelBackend, SolverVariant};
    use hetero_platform::catalog;

    fn base() -> RunRequest {
        RunRequest::new(catalog::puma(), App::smoke_rd(2), 8, 3)
    }

    /// Host-side execution knobs never split a batch: two jobs that
    /// compute the same report must be claimable together.
    #[test]
    fn host_knobs_and_seed_do_not_split_batches() {
        let shape = batch_shape(&base());
        for req in [
            RunRequest {
                seed: 999,
                ..base()
            },
            RunRequest {
                threads_per_rank: 4,
                ..base()
            },
            RunRequest {
                sched_workers: 2,
                ..base()
            },
        ] {
            assert_eq!(batch_shape(&req), shape);
        }
    }

    /// The operator-path overrides the prep key deliberately excludes
    /// must still split batches: `solver_variant` and `kernel_backend`
    /// change what a worker executes, so jobs differing only there are
    /// not interchangeable claim-group members.
    #[test]
    fn solver_variant_and_kernel_backend_split_batches() {
        let plain = batch_shape(&base());
        let variant = batch_shape(&RunRequest {
            solver_variant: Some(SolverVariant::Pipelined),
            ..base()
        });
        let backend = batch_shape(&RunRequest {
            kernel_backend: Some(KernelBackend::MatrixFree),
            ..base()
        });
        assert_ne!(plain, variant, "solver_variant must be in the batch shape");
        assert_ne!(plain, backend, "kernel_backend must be in the batch shape");
        assert_ne!(variant, backend);
    }

    /// The first shape coordinate is exactly the `hetero-prep/key/v1`
    /// key, so every job of a batch shares one `PreparedScenario`.
    #[test]
    fn batch_shape_leads_with_prep_key() {
        let req = base();
        assert_eq!(batch_shape(&req).0, prep_key(&req));
        // Size coordinates change the prep key and the shape together.
        let wider = RunRequest {
            ranks: 16,
            ..base()
        };
        assert_ne!(batch_shape(&wider).0, batch_shape(&req).0);
    }
}
