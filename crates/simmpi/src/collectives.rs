//! Collective operations built from modeled point-to-point messages.
//!
//! The algorithms are the classic binomial-tree / dissemination schemes, so
//! collective cost *emerges* from the network model: on a high-latency
//! fabric an allreduce over `p` ranks costs ~`2 ceil(log2 p)` latencies —
//! exactly the term that hurts the Krylov solve phase on EC2 in the paper.
//!
//! Every collective consumes one *epoch* of the reserved tag space; all
//! ranks must call collectives in the same order (standard MPI semantics).

use crate::comm::{Payload, SimComm};

/// Tags at or above this value are reserved for collectives.
pub const COLLECTIVE_TAG_BASE: u64 = 1 << 40;
const SLOTS_PER_EPOCH: u64 = 8;
const SLOT_REDUCE: u64 = 0;
const SLOT_BCAST: u64 = 1;
const SLOT_BARRIER: u64 = 2;
const SLOT_GATHER: u64 = 3;
const SLOT_ALLGATHER: u64 = 4;

/// Element-wise reduction operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

impl ReduceOp {
    #[inline]
    fn apply(self, acc: &mut [f64], other: &[f64]) {
        debug_assert_eq!(acc.len(), other.len());
        match self {
            ReduceOp::Sum => {
                for (a, b) in acc.iter_mut().zip(other) {
                    *a += b;
                }
            }
            ReduceOp::Max => {
                for (a, b) in acc.iter_mut().zip(other) {
                    *a = a.max(*b);
                }
            }
            ReduceOp::Min => {
                for (a, b) in acc.iter_mut().zip(other) {
                    *a = a.min(*b);
                }
            }
        }
    }
}

impl SimComm {
    /// Synchronizes all ranks (dissemination barrier, `ceil(log2 p)`
    /// rounds). On return every rank's clock is at least the maximum clock
    /// any rank had on entry.
    ///
    /// Barriers are also where each rank's trace staging buffer drains
    /// into the shared sink: every rank is stalled anyway, so the drain's
    /// wall-time cost never skews a measurement.
    pub fn barrier(&mut self) {
        let (t0, b0) = (self.clock(), self.stats().bytes_sent);
        self.barrier_inner();
        self.trace_collective("barrier", t0, b0);
        self.flush_trace();
    }

    fn barrier_inner(&mut self) {
        // A dead node must be observed even by a size-1 job (or one whose
        // messaging all happens to be intra-node and already past).
        self.maybe_fail();
        let size = self.size();
        if size == 1 {
            return;
        }
        let tag =
            COLLECTIVE_TAG_BASE + self.next_collective_epoch() * SLOTS_PER_EPOCH + SLOT_BARRIER;
        let rank = self.rank();
        let mut step = 1usize;
        while step < size {
            let to = (rank + step) % size;
            let from = (rank + size - step) % size;
            self.send(to, tag, Payload::Empty);
            let _ = self.recv(from, tag);
            step <<= 1;
        }
    }

    /// Reduces `data` element-wise onto the root (binomial tree). Returns
    /// `Some(result)` on the root, `None` elsewhere.
    pub fn reduce(&mut self, root: usize, op: ReduceOp, data: &[f64]) -> Option<Vec<f64>> {
        let (t0, b0) = (self.clock(), self.stats().bytes_sent);
        let out = self.reduce_inner(root, op, data);
        self.trace_collective("reduce", t0, b0);
        out
    }

    fn reduce_inner(&mut self, root: usize, op: ReduceOp, data: &[f64]) -> Option<Vec<f64>> {
        let size = self.size();
        assert!(root < size);
        let tag =
            COLLECTIVE_TAG_BASE + self.next_collective_epoch() * SLOTS_PER_EPOCH + SLOT_REDUCE;
        let rel = (self.rank() + size - root) % size;
        let mut acc = data.to_vec();
        let mut mask = 1usize;
        while mask < size {
            if rel & mask == 0 {
                let partner_rel = rel | mask;
                if partner_rel < size {
                    let partner = (partner_rel + root) % size;
                    let other = self.recv_f64(partner, tag);
                    op.apply(&mut acc, &other);
                    // Combining costs real flops.
                    self.compute(crate::work::Work::new(
                        acc.len() as f64,
                        16.0 * acc.len() as f64,
                    ));
                }
            } else {
                let partner = ((rel & !mask) + root) % size;
                self.send(partner, tag, Payload::F64(acc.clone()));
                return None;
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// Broadcasts `data` from the root (binomial tree). Every rank returns
    /// the root's vector; non-root inputs are ignored.
    pub fn bcast(&mut self, root: usize, data: Vec<f64>) -> Vec<f64> {
        let (t0, b0) = (self.clock(), self.stats().bytes_sent);
        let out = self.bcast_inner(root, data);
        self.trace_collective("bcast", t0, b0);
        out
    }

    fn bcast_inner(&mut self, root: usize, data: Vec<f64>) -> Vec<f64> {
        let size = self.size();
        assert!(root < size);
        let tag = COLLECTIVE_TAG_BASE + self.next_collective_epoch() * SLOTS_PER_EPOCH + SLOT_BCAST;
        let rel = (self.rank() + size - root) % size;
        let mut buf = data;
        let mut mask = 1usize;
        // Receive from parent (the rank that differs in my lowest set bit).
        if rel != 0 {
            while mask < size {
                if rel & mask != 0 {
                    let parent = ((rel & !mask) + root) % size;
                    buf = self.recv_f64(parent, tag);
                    break;
                }
                mask <<= 1;
            }
        } else {
            while mask < size {
                mask <<= 1;
            }
        }
        // Forward to children at lower bit positions. `mask` is the bit at
        // which this rank received (or >= size for the root), so every lower
        // bit of `rel` is clear and `rel + m` addresses a distinct subtree.
        mask >>= 1;
        while mask > 0 {
            if rel + mask < size {
                let child = ((rel + mask) + root) % size;
                self.send(child, tag, Payload::F64(buf.clone()));
            }
            mask >>= 1;
        }
        buf
    }

    /// All-reduce: every rank returns the element-wise reduction over all
    /// ranks' `data` (reduce-to-0 + broadcast).
    pub fn allreduce(&mut self, op: ReduceOp, data: &[f64]) -> Vec<f64> {
        let reduced = self.reduce(0, op, data);
        self.bcast(0, reduced.unwrap_or_default())
    }

    /// Scalar all-reduce, the hot operation of Krylov dot products.
    pub fn allreduce_scalar(&mut self, op: ReduceOp, x: f64) -> f64 {
        self.allreduce(op, &[x])[0]
    }

    /// Fused all-reduce: `k` scalars batched through ONE reduce+broadcast
    /// tree, so the k reductions of a Krylov iteration cost one collective's
    /// latency instead of k. The binomial tree combines element-wise in the
    /// same rank order as `k` separate calls, so each element of the result
    /// is bitwise-identical to the scalar all-reduce of that element.
    ///
    /// Traced as a single `"allreduce_fused"` collective span (the separate
    /// reduce/bcast spans of [`Self::allreduce`] are not emitted), so the
    /// rollup can tell fused from scalar reductions.
    pub fn allreduce_vec(&mut self, op: ReduceOp, data: &[f64]) -> Vec<f64> {
        let (t0, b0) = (self.clock(), self.stats().bytes_sent);
        let reduced = self.reduce_inner(0, op, data);
        let out = self.bcast_inner(0, reduced.unwrap_or_default());
        self.trace_collective("allreduce_fused", t0, b0);
        out
    }

    /// Gathers every rank's vector on the root (direct sends). Returns
    /// `Some(per-rank vectors)` on the root, `None` elsewhere.
    pub fn gather(&mut self, root: usize, data: &[f64]) -> Option<Vec<Vec<f64>>> {
        let (t0, b0) = (self.clock(), self.stats().bytes_sent);
        let out = self.gather_inner(root, data);
        self.trace_collective("gather", t0, b0);
        out
    }

    fn gather_inner(&mut self, root: usize, data: &[f64]) -> Option<Vec<Vec<f64>>> {
        let size = self.size();
        assert!(root < size);
        let tag =
            COLLECTIVE_TAG_BASE + self.next_collective_epoch() * SLOTS_PER_EPOCH + SLOT_GATHER;
        if self.rank() == root {
            let mut out = vec![Vec::new(); size];
            out[root] = data.to_vec();
            #[allow(clippy::needless_range_loop)] // src is also the peer rank
            for src in 0..size {
                if src != root {
                    out[src] = self.recv_f64(src, tag);
                }
            }
            Some(out)
        } else {
            self.send(root, tag, Payload::F64(data.to_vec()));
            None
        }
    }

    /// All-gather (ring algorithm): every rank returns all ranks' vectors,
    /// indexed by rank.
    pub fn allgather(&mut self, data: &[f64]) -> Vec<Vec<f64>> {
        let (t0, b0) = (self.clock(), self.stats().bytes_sent);
        let out = self.allgather_inner(data);
        self.trace_collective("allgather", t0, b0);
        out
    }

    fn allgather_inner(&mut self, data: &[f64]) -> Vec<Vec<f64>> {
        let size = self.size();
        let rank = self.rank();
        let tag =
            COLLECTIVE_TAG_BASE + self.next_collective_epoch() * SLOTS_PER_EPOCH + SLOT_ALLGATHER;
        let mut out = vec![Vec::new(); size];
        out[rank] = data.to_vec();
        if size == 1 {
            return out;
        }
        let right = (rank + 1) % size;
        let left = (rank + size - 1) % size;
        // At step s, forward the block that originated at rank - s.
        let mut carry = data.to_vec();
        for s in 0..size - 1 {
            self.send(right, tag, Payload::F64(carry));
            carry = self.recv_f64(left, tag);
            let origin = (rank + size - s - 1) % size;
            out[origin] = carry.clone();
        }
        out
    }

    /// All-gather of index vectors (used for DoF-map setup).
    pub fn allgather_usize(&mut self, data: &[usize]) -> Vec<Vec<usize>> {
        let as_f64: Vec<f64> = data.iter().map(|&x| x as f64).collect();
        self.allgather(&as_f64)
            .into_iter()
            .map(|v| v.into_iter().map(|x| x as usize).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_spmd, run_spmd_with_faults, SpmdConfig};
    use crate::fault::FaultPlan;
    use crate::network::NetworkModel;
    use crate::topology::ClusterTopology;
    use crate::work::{ComputeModel, Work};

    fn cfg(size: usize) -> SpmdConfig {
        SpmdConfig {
            size,
            topo: ClusterTopology::uniform(size.div_ceil(4).max(1), 4),
            net: NetworkModel::gigabit_ethernet(),
            compute: ComputeModel::new(1e9, 4e9),
            seed: 7,
        }
    }

    #[test]
    fn allreduce_sum_matches_serial() {
        for p in [1usize, 2, 3, 5, 8, 13, 16] {
            let r = run_spmd(cfg(p), |comm| {
                let mine = vec![comm.rank() as f64, 1.0];
                comm.allreduce(ReduceOp::Sum, &mine)
            });
            let expected = vec![(p * (p - 1) / 2) as f64, p as f64];
            for res in &r {
                assert_eq!(res.value, expected, "p = {p}");
            }
        }
    }

    #[test]
    fn allreduce_max_min() {
        let r = run_spmd(cfg(7), |comm| {
            let x = comm.rank() as f64;
            (
                comm.allreduce_scalar(ReduceOp::Max, x),
                comm.allreduce_scalar(ReduceOp::Min, x),
            )
        });
        for res in &r {
            assert_eq!(res.value, (6.0, 0.0));
        }
    }

    #[test]
    fn reduce_only_root_gets_result() {
        let r = run_spmd(cfg(6), |comm| comm.reduce(2, ReduceOp::Sum, &[1.0]));
        for res in &r {
            if res.rank == 2 {
                assert_eq!(res.value, Some(vec![6.0]));
            } else {
                assert_eq!(res.value, None);
            }
        }
    }

    #[test]
    fn bcast_from_each_root() {
        for root in 0..5 {
            let r = run_spmd(cfg(5), move |comm| {
                let data = if comm.rank() == root {
                    vec![42.0, root as f64]
                } else {
                    vec![]
                };
                comm.bcast(root, data)
            });
            for res in &r {
                assert_eq!(res.value, vec![42.0, root as f64], "root = {root}");
            }
        }
    }

    #[test]
    fn barrier_aligns_clocks() {
        let r = run_spmd(cfg(4), |comm| {
            // Rank 3 does heavy compute before the barrier.
            if comm.rank() == 3 {
                comm.compute(crate::work::Work::new(5e9, 0.0));
            }
            comm.barrier();
            comm.clock()
        });
        // Everyone's post-barrier clock is at least rank 3's compute time.
        for res in &r {
            assert!(res.value >= 5.0, "rank {} clock {}", res.rank, res.value);
        }
    }

    #[test]
    fn gather_collects_per_rank_data() {
        let r = run_spmd(cfg(5), |comm| comm.gather(0, &[comm.rank() as f64 * 2.0]));
        let root = r[0].value.as_ref().unwrap();
        for (i, v) in root.iter().enumerate() {
            assert_eq!(v, &vec![i as f64 * 2.0]);
        }
        assert!(r[1].value.is_none());
    }

    #[test]
    fn allgather_returns_everyones_data() {
        for p in [1usize, 2, 4, 7] {
            let r = run_spmd(cfg(p), |comm| comm.allgather(&[comm.rank() as f64]));
            for res in &r {
                for (i, v) in res.value.iter().enumerate() {
                    assert_eq!(v, &vec![i as f64], "p = {p}, rank {}", res.rank);
                }
            }
        }
    }

    #[test]
    fn allgather_usize_roundtrip() {
        let r = run_spmd(cfg(3), |comm| comm.allgather_usize(&[comm.rank() + 100]));
        for res in &r {
            assert_eq!(res.value, vec![vec![100], vec![101], vec![102]]);
        }
    }

    #[test]
    fn consecutive_collectives_do_not_interfere() {
        let r = run_spmd(cfg(4), |comm| {
            let a = comm.allreduce_scalar(ReduceOp::Sum, 1.0);
            comm.barrier();
            let b = comm.allreduce_scalar(ReduceOp::Sum, 2.0);
            let c = comm.allgather(&[comm.rank() as f64]);
            (a, b, c.len())
        });
        for res in &r {
            assert_eq!(res.value, (4.0, 8.0, 4));
        }
    }

    #[test]
    fn allreduce_cost_grows_with_ranks() {
        let time_for = |p: usize| {
            let mut c = cfg(p);
            c.topo = ClusterTopology::uniform(p, 1);
            c.net.jitter_sigma = 0.0;
            let r = run_spmd(c, |comm| {
                let _ = comm.allreduce_scalar(ReduceOp::Sum, 1.0);
                comm.clock()
            });
            r.iter().map(|x| x.value).fold(0.0f64, f64::max)
        };
        let t2 = time_for(2);
        let t16 = time_for(16);
        assert!(t16 > 2.0 * t2, "t2 = {t2}, t16 = {t16}");
    }

    #[test]
    fn collective_with_dead_node_errors_instead_of_deadlocking() {
        // cfg(8) = 2 nodes x 4 cores; node 1 (ranks 4..8) dies mid-loop.
        // Survivors blocked inside the allreduce tree must unwind via the
        // poison path, and the job reports the node loss.
        let plan = FaultPlan {
            node_down_at: vec![f64::INFINITY, 2.5],
            slow_windows: vec![],
        };
        let out = run_spmd_with_faults(cfg(8), plan, |comm| {
            for _ in 0..10 {
                comm.compute(Work::new(1e9, 0.0)); // 1 virtual second each
                let _ = comm.allreduce_scalar(ReduceOp::Sum, 1.0);
            }
        });
        let rf = out.unwrap_err();
        assert_eq!(rf.node, 1);
        assert_eq!(rf.at, 2.5);
    }
}
