//! The per-rank communicator: typed point-to-point messaging with virtual
//! clocks.

use crate::fault::{FaultPanic, FaultPlan, RankFailed};
use crate::network::{MsgContext, NetworkModel};
use crate::stats::CommStats;
use crate::topology::ClusterTopology;
use crate::work::{ComputeModel, Work};
use hetero_trace::{EventKind, RankTracer, TraceDetail, TraceSink};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Fixed CPU-side cost of posting a send (buffer packing setup).
pub(crate) const SEND_OVERHEAD: f64 = 0.4e-6;
/// Fixed CPU-side cost of completing a receive.
pub(crate) const RECV_OVERHEAD: f64 = 0.4e-6;
/// Per-message wire/protocol header, counted toward modeled bytes.
pub(crate) const HEADER_BYTES: f64 = 64.0;

/// A message payload. The simulator moves *real* data between ranks so that
/// applications compute correct results; `Empty` messages carry timing only
/// (their modeled size still matters).
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A vector of floats (solution fragments, halo values...).
    F64(Vec<f64>),
    /// A vector of indices (DoF maps, sizes...).
    Usize(Vec<usize>),
    /// No data; used by barriers and synthetic traffic.
    Empty,
}

impl Payload {
    /// Modeled wire size of the payload body, in bytes.
    pub fn body_bytes(&self) -> f64 {
        match self {
            Payload::F64(v) => 8.0 * v.len() as f64,
            Payload::Usize(v) => 8.0 * v.len() as f64,
            Payload::Empty => 0.0,
        }
    }
}

/// Handle for a nonblocking send posted with [`SimComm::isend`].
///
/// Sends are buffered (as in the blocking [`SimComm::send`]), so the
/// operation is already complete when the handle is returned; the handle
/// exists so call sites read like the MPI post/wait idiom they model.
#[derive(Debug, Clone, Copy)]
pub struct SendRequest {
    /// Destination rank the message was posted to.
    pub dst: usize,
    /// Modeled wire bytes of the posted message.
    pub bytes: f64,
}

/// Handle for a nonblocking receive posted with [`SimComm::irecv`].
///
/// The handle records the *post time* on this rank's virtual clock; the
/// matching [`SimComm::wait_all`] (or [`SimComm::wait`]) charges a transfer
/// that progressed concurrently with whatever compute the rank charged
/// between post and wait.
#[derive(Debug, Clone, Copy)]
#[must_use = "a posted receive must be completed with wait/wait_all"]
pub struct RecvRequest {
    src: usize,
    tag: u64,
    /// This rank's virtual clock when the receive was posted.
    posted: f64,
}

struct Envelope {
    payload: Payload,
    /// Modeled size used for pricing (body + header, or an explicit
    /// override for synthetic traffic).
    modeled_bytes: f64,
    /// Sender's virtual clock when the message left.
    depart: f64,
    /// Per-(src, dst) sequence number, keys the jitter hash.
    seq: u64,
    src: usize,
}

#[derive(Default)]
struct Mailbox {
    queues: Mutex<HashMap<(usize, u64), VecDeque<Envelope>>>,
    cv: Condvar,
}

/// State shared by all ranks of one SPMD job.
pub(crate) struct SharedComm {
    pub(crate) size: usize,
    pub(crate) topo: ClusterTopology,
    pub(crate) net: NetworkModel,
    pub(crate) compute: ComputeModel,
    pub(crate) seed: u64,
    pub(crate) nodes_active: usize,
    pub(crate) faults: FaultPlan,
    /// Trace sink all ranks drain into; `None` disables recording (each
    /// rank then holds no tracer at all).
    pub(crate) trace: Option<Arc<TraceSink>>,
    /// The M:N scheduler when this job runs on the cooperative engine;
    /// `None` under the thread engine. Selects how blocking receives park
    /// (coroutine yield vs condvar wait) and how senders wake them.
    pub(crate) coop: Option<Arc<crate::sched::Scheduler>>,
    mailboxes: Vec<Mailbox>,
    /// One flag per rank, raised when that rank has exited (clean return,
    /// injected fault, or panic). A receiver blocked on a message unwinds
    /// only once its *sender* is gone — a virtual-time-determined
    /// condition — never on a global "something failed" flag, which would
    /// make the survivors' progress (and any side effects like checkpoint
    /// commits) depend on wall-clock scheduling.
    terminated: Vec<AtomicBool>,
}

impl SharedComm {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        size: usize,
        topo: ClusterTopology,
        net: NetworkModel,
        compute: ComputeModel,
        seed: u64,
        faults: FaultPlan,
        trace: Option<Arc<TraceSink>>,
        coop: Option<Arc<crate::sched::Scheduler>>,
    ) -> Arc<Self> {
        assert!(size > 0, "job must have at least one rank");
        assert!(
            size <= topo.total_cores(),
            "job of {size} ranks exceeds cluster capacity {}",
            topo.total_cores()
        );
        let nodes_active = topo.nodes_for_ranks(size);
        let mailboxes = (0..size).map(|_| Mailbox::default()).collect();
        let terminated = (0..size).map(|_| AtomicBool::new(false)).collect();
        Arc::new(SharedComm {
            size,
            topo,
            net,
            compute,
            seed,
            nodes_active,
            faults,
            trace,
            coop,
            mailboxes,
            terminated,
        })
    }

    /// Records that `rank`'s thread has exited (for any reason) and wakes
    /// every blocked receiver so those waiting on this rank can re-check.
    /// All of the rank's sends happen-before this store, so a receiver that
    /// observes the flag and still finds its queue empty knows the message
    /// will never arrive. Thread engine only: the condvar broadcast is
    /// O(size), which the cooperative engine replaces with a targeted
    /// scheduler wake (see [`Self::mark_terminated_quiet`]).
    pub(crate) fn mark_terminated(&self, rank: usize) {
        self.terminated[rank].store(true, Ordering::SeqCst);
        for m in &self.mailboxes {
            let _guard = m
                .queues
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            m.cv.notify_all();
        }
    }

    /// Raises `rank`'s termination flag without any condvar traffic. The
    /// cooperative worker calls this *before* waking the dead rank's
    /// waiters through the scheduler, so a woken receiver that still finds
    /// its queue empty can safely conclude the message will never come.
    pub(crate) fn mark_terminated_quiet(&self, rank: usize) {
        self.terminated[rank].store(true, Ordering::SeqCst);
    }

    pub(crate) fn rank_terminated(&self, rank: usize) -> bool {
        self.terminated[rank].load(Ordering::SeqCst)
    }

    /// Whether a message from `(src, tag)` is queued at `dst`'s mailbox.
    /// Used by the scheduler's blocked-registration re-check; takes the
    /// mailbox lock, so callers may hold the scheduler lock (the lock
    /// order scheduler → mailbox is only ever taken in this direction —
    /// senders release the mailbox lock before touching the scheduler).
    pub(crate) fn has_queued(&self, dst: usize, src: usize, tag: u64) -> bool {
        let queues = self.mailboxes[dst]
            .queues
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        queues.get(&(src, tag)).is_some_and(|q| !q.is_empty())
    }
}

/// One rank's handle on the simulated job: point-to-point messaging, virtual
/// clock, and work accounting. Not shareable across threads; each rank owns
/// exactly one.
pub struct SimComm {
    rank: usize,
    shared: Arc<SharedComm>,
    clock: f64,
    /// Per-destination sequence counters, allocated on first use: a rank
    /// typically talks to O(1) neighbours, and a dense `Vec` would cost
    /// O(size²) across the job (ruinous at 10⁴–10⁵ ranks).
    send_seq: HashMap<usize, u64>,
    stats: CommStats,
    pub(crate) coll_epoch: u64,
    /// This rank's topology node and its scheduled death time (cached from
    /// the shared fault plan; `INFINITY` means the node survives).
    node: usize,
    down_at: f64,
    /// Trace recording handle; `None` when tracing is disabled, so the
    /// disabled fast path is a single `Option` discriminant test.
    tracer: Option<RankTracer>,
}

impl SimComm {
    pub(crate) fn new(rank: usize, shared: Arc<SharedComm>) -> Self {
        assert!(rank < shared.size);
        let node = shared.topo.node_of_rank(rank);
        let down_at = shared.faults.down_time(node);
        let tracer = shared
            .trace
            .as_ref()
            .map(|sink| RankTracer::new(rank as u32, sink.clone()));
        SimComm {
            rank,
            shared,
            clock: 0.0,
            send_seq: HashMap::new(),
            stats: CommStats::default(),
            coll_epoch: 0,
            node,
            down_at,
            tracer,
        }
    }

    /// Raises [`RankFailed`] (as a typed panic the engine intercepts) once
    /// the virtual clock has reached this rank's node-loss time. Called by
    /// every clock-advancing operation, so a dead node is observed at the
    /// first virtual instant it could be — deterministically, because the
    /// clock itself is deterministic.
    #[inline]
    pub(crate) fn maybe_fail(&self) {
        if self.clock >= self.down_at {
            std::panic::panic_any(FaultPanic(RankFailed {
                node: self.node,
                at: self.down_at,
            }));
        }
    }

    /// This rank's id.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the job.
    #[inline]
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Accumulated counters.
    #[inline]
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// The cluster topology this job runs on.
    #[inline]
    pub fn topology(&self) -> &ClusterTopology {
        &self.shared.topo
    }

    /// The network model in force.
    #[inline]
    pub fn network(&self) -> &NetworkModel {
        &self.shared.net
    }

    /// The compute model in force.
    #[inline]
    pub fn compute_model(&self) -> &ComputeModel {
        &self.shared.compute
    }

    /// Nodes occupied by this job.
    #[inline]
    pub fn nodes_active(&self) -> usize {
        self.shared.nodes_active
    }

    /// Advances the virtual clock by the roofline time of `work` and records
    /// the counters. This is how application kernels charge their cost.
    pub fn compute(&mut self, work: Work) {
        let dt = self.shared.compute.time(work);
        self.clock += dt;
        self.stats.flops += work.flops;
        self.stats.mem_bytes += work.bytes;
        self.stats.compute_time += dt;
        self.maybe_fail();
    }

    /// Advances the virtual clock by `seconds` without attributing work
    /// (queue waits, provisioning delays injected by the harness).
    pub fn advance(&mut self, seconds: f64) {
        assert!(seconds >= 0.0, "cannot rewind the clock");
        self.clock += seconds;
        self.stats.other_time += seconds;
        self.maybe_fail();
    }

    /// Sends `payload` to rank `dst` with the given `tag`.
    ///
    /// Non-blocking (infinite buffering, like a buffered MPI send). The
    /// sender pays a small CPU overhead plus a packing cost.
    pub fn send(&mut self, dst: usize, tag: u64, payload: Payload) {
        let body = payload.body_bytes();
        self.send_with_modeled_bytes(dst, tag, payload, body + HEADER_BYTES);
    }

    /// Sends `payload` but prices it as `modeled_bytes` on the wire. Used by
    /// synthetic benchmarks and the modeled large-scale runs, where a small
    /// real payload stands in for a large virtual one.
    pub fn send_with_modeled_bytes(
        &mut self,
        dst: usize,
        tag: u64,
        payload: Payload,
        modeled_bytes: f64,
    ) {
        assert!(dst < self.shared.size, "destination rank out of range");
        let counter = self.send_seq.entry(dst).or_insert(0);
        let seq = *counter;
        *counter += 1;

        // A dead sender must not enqueue: the message would teleport data
        // off a lost node. Check before the clock moves past the send.
        self.maybe_fail();

        // Sender-side cost: fixed overhead plus copying into the transport.
        let pack = modeled_bytes / self.shared.net.intra_bw;
        self.clock += SEND_OVERHEAD + pack;
        self.stats.comm_time += SEND_OVERHEAD + pack;
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += modeled_bytes;
        if self.trace_detail() == Some(TraceDetail::Messages) {
            self.trace_instant(EventKind::SendMsg {
                peer: dst as u32,
                bytes: modeled_bytes,
            });
        }

        let env = Envelope {
            payload,
            modeled_bytes,
            depart: self.clock,
            seq,
            src: self.rank,
        };
        let mailbox = &self.shared.mailboxes[dst];
        {
            let mut queues = mailbox
                .queues
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            queues.entry((self.rank, tag)).or_default().push_back(env);
        }
        // Wake the receiver *after* releasing the mailbox lock: under the
        // cooperative engine this takes the scheduler lock, and the only
        // permitted nesting is scheduler → mailbox (worker side), never the
        // reverse.
        match &self.shared.coop {
            Some(sched) => sched.notify_send(self.rank, dst, tag),
            None => mailbox.cv.notify_all(),
        }
    }

    /// Blocks until a message from `(src, tag)` is queued, then pops it —
    /// by yielding this rank's coroutine to the M:N scheduler under the
    /// cooperative engine, or by a condvar wait under the thread engine.
    /// Either way the rank unwinds (poison panic) only once the sender is
    /// provably gone — a virtual-time-determined condition shared by the
    /// blocking and nonblocking receive paths.
    fn block_for_envelope(&mut self, src: usize, tag: u64) -> Envelope {
        if self.shared.coop.is_some() {
            self.coop_block_for_envelope(src, tag)
        } else {
            self.thread_block_for_envelope(src, tag)
        }
    }

    /// Cooperative-engine blocking: this is the yield point. The coroutine
    /// parks with its current virtual clock as its run-queue key; the
    /// worker registers the block (re-checking the mailbox under the
    /// scheduler lock, so no wakeup can be lost) and runs other ranks.
    fn coop_block_for_envelope(&mut self, src: usize, tag: u64) -> Envelope {
        loop {
            {
                let mut queues = self.shared.mailboxes[self.rank]
                    .queues
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if let Some(env) = queues.get_mut(&(src, tag)).and_then(|q| q.pop_front()) {
                    return env;
                }
                // Unwind only when the *sender* is provably gone: whether a
                // message is ever sent is a pure function of virtual time,
                // so every survivor's unwind point is deterministic too.
                // The termination flag is raised before the scheduler wake,
                // and all of src's sends happen-before the flag, so "flag
                // up + queue empty" (checked under the one mailbox lock)
                // proves the message will never arrive.
                if self.shared.rank_terminated(src) {
                    panic!(
                        "job poisoned: rank {} waited on ({src}, {tag}) but the sender is gone",
                        self.rank
                    );
                }
            }
            // Lock released before yielding; the worker-side registration
            // re-check closes the window between the look and the park.
            match crate::sched::yield_blocked(src, tag, self.clock) {
                crate::sched::Verdict::Retry => continue,
                crate::sched::Verdict::Deadlock => panic!(
                    "job poisoned: deadlock victim rank {} blocked on recv({src}, {tag})",
                    self.rank
                ),
            }
        }
    }

    /// Thread-engine blocking: a condvar wait on this rank's mailbox.
    fn thread_block_for_envelope(&mut self, src: usize, tag: u64) -> Envelope {
        let mailbox = &self.shared.mailboxes[self.rank];
        let mut queues = mailbox
            .queues
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(q) = queues.get_mut(&(src, tag)) {
                if let Some(env) = q.pop_front() {
                    return env;
                }
            }
            // Unwind only when the *sender* is provably gone: whether a
            // message is ever sent is a pure function of virtual time
            // (senders die at deterministic clock readings), so every
            // survivor's unwind point — and everything it commits before
            // unwinding — is deterministic too. A global poison flag
            // here would race host scheduling.
            if self.shared.rank_terminated(src) {
                // The terminated store is ordered after all of src's
                // sends; one last look under the lock catches a final
                // message that raced the flag.
                if let Some(env) = queues.get_mut(&(src, tag)).and_then(|q| q.pop_front()) {
                    return env;
                }
                panic!(
                    "job poisoned: rank {} waited on ({src}, {tag}) but the sender is gone",
                    self.rank
                );
            }
            queues = mailbox
                .cv
                .wait(queues)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Prices the transfer of a delivered envelope: `(latency, drain, slow)`
    /// from the network model and the fault plan's degradation windows.
    fn transfer_terms(&mut self, env: &Envelope) -> (f64, f64, f64) {
        let topo = &self.shared.topo;
        let src = env.src;
        let same_node = topo.same_node(src, self.rank);
        let same_group = topo.same_group(src, self.rank);
        // Both endpoints' NICs are shared by their node-mates; the busier
        // side bounds the transfer.
        let sharers = topo
            .ranks_on_node(topo.node_of_rank(src), self.shared.size)
            .max(topo.ranks_on_node(topo.node_of_rank(self.rank), self.shared.size));
        let ctx = MsgContext {
            bytes: env.modeled_bytes,
            same_node,
            same_group,
            nic_sharers: sharers,
            nodes_active: self.shared.nodes_active,
            jitter_key: (self.shared.seed, src as u64, self.rank as u64, env.seq),
        };
        let (latency, drain) = self.shared.net.transfer_cost(ctx);
        // Transient degradation windows stretch the wire portion of the
        // transfer; keyed to the deterministic departure time so both ends
        // of the exchange agree on whether the window applied.
        let slow = self.shared.faults.slow_factor(env.depart);
        (latency, drain, slow)
    }

    /// Receives the next message from `src` with `tag`, blocking the host
    /// thread until it arrives. The virtual clock advances to the message's
    /// modeled arrival time (if later than now) plus a receive overhead.
    pub fn recv(&mut self, src: usize, tag: u64) -> Payload {
        assert!(src < self.shared.size, "source rank out of range");
        // A rank whose node is already down must not block on a mailbox it
        // will never drain.
        self.maybe_fail();
        let env = self.block_for_envelope(src, tag);
        debug_assert_eq!(env.src, src);

        // The first byte arrives after the latency (overlapping with other
        // in-flight messages); the payload then drains serially through this
        // rank's NIC share.
        let (latency, drain, slow) = self.transfer_terms(&env);
        let before = self.clock;
        self.clock = self.clock.max(env.depart + latency * slow) + drain * slow + RECV_OVERHEAD;
        self.stats.comm_time += self.clock - before;
        self.stats.msgs_received += 1;
        self.stats.bytes_received += env.modeled_bytes;
        if self.trace_detail() == Some(TraceDetail::Messages) {
            self.trace_span(
                before,
                EventKind::RecvMsg {
                    peer: src as u32,
                    bytes: env.modeled_bytes,
                },
            );
        }
        self.maybe_fail();
        env.payload
    }

    /// Receives and unwraps an `F64` payload.
    ///
    /// # Panics
    /// Panics if the message is not `Payload::F64`.
    pub fn recv_f64(&mut self, src: usize, tag: u64) -> Vec<f64> {
        match self.recv(src, tag) {
            Payload::F64(v) => v,
            other => panic!("expected F64 payload from rank {src}, got {other:?}"),
        }
    }

    /// Receives and unwraps a `Usize` payload.
    ///
    /// # Panics
    /// Panics if the message is not `Payload::Usize`.
    pub fn recv_usize(&mut self, src: usize, tag: u64) -> Vec<usize> {
        match self.recv(src, tag) {
            Payload::Usize(v) => v,
            other => panic!("expected Usize payload from rank {src}, got {other:?}"),
        }
    }

    /// Posts a nonblocking send of `payload` to rank `dst`.
    ///
    /// Identical cost and semantics to [`Self::send`] (buffered, so the
    /// sender never blocks); the returned handle is already complete and
    /// needs no wait.
    pub fn isend(&mut self, dst: usize, tag: u64, payload: Payload) -> SendRequest {
        let bytes = payload.body_bytes() + HEADER_BYTES;
        self.send_with_modeled_bytes(dst, tag, payload, bytes);
        SendRequest { dst, bytes }
    }

    /// Posts a nonblocking receive for the next message from `(src, tag)`.
    ///
    /// Free on the virtual clock: the post merely records the current time.
    /// From this instant the transfer progresses *concurrently* with any
    /// compute the rank charges, until the matching [`Self::wait_all`] /
    /// [`Self::wait`] completes it.
    pub fn irecv(&mut self, src: usize, tag: u64) -> RecvRequest {
        assert!(src < self.shared.size, "source rank out of range");
        self.maybe_fail();
        RecvRequest {
            src,
            tag,
            posted: self.clock,
        }
    }

    /// Completes one posted receive. Equivalent to
    /// `wait_all(vec![req])` returning the single payload.
    pub fn wait(&mut self, req: RecvRequest) -> Payload {
        self.wait_all(vec![req]).pop().expect("one request in")
    }

    /// Completes posted receives in order, returning their payloads.
    ///
    /// Deterministic virtual-time overlap model: a message posted at `P`
    /// that departed its sender at `D` is fully transferred (latency plus
    /// drain, both stretched by any degradation window keyed to `D`) at
    ///
    /// ```text
    /// avail = max(P, D + latency·slow) + drain·slow
    /// ```
    ///
    /// and the waiter's clock advances to `max(wait_point, avail)` plus the
    /// receive overhead — i.e. completion is `max(post + transfer,
    /// wait_point)`: transfer time already covered by compute charged
    /// between post and wait is *hidden*, only the remainder stalls the
    /// receiver. Every term is a pure function of virtual times, so the
    /// result is independent of host scheduling. When the wait immediately
    /// follows the post this degenerates to exactly the blocking
    /// [`Self::recv`] cost.
    ///
    /// Emits one [`EventKind::Overlap`] instant (at `Collectives` detail or
    /// finer) recording the hidden vs exposed split of the batch.
    pub fn wait_all(&mut self, reqs: Vec<RecvRequest>) -> Vec<Payload> {
        self.maybe_fail();
        let mut out = Vec::with_capacity(reqs.len());
        let n_msgs = reqs.len() as u32;
        let (mut hidden, mut exposed) = (0.0f64, 0.0f64);
        for req in reqs {
            let env = self.block_for_envelope(req.src, req.tag);
            debug_assert_eq!(env.src, req.src);
            let (latency, drain, slow) = self.transfer_terms(&env);
            let avail = req.posted.max(env.depart + latency * slow) + drain * slow;
            let before = self.clock;
            self.clock = self.clock.max(avail) + RECV_OVERHEAD;
            // Wire time from departure to full arrival, split into the part
            // that stalled the waiter (exposed) and the part that ran under
            // compute or earlier waits (hidden).
            let wire = avail - env.depart;
            let stall = (avail - before).max(0.0);
            exposed += stall;
            hidden += (wire - stall).max(0.0);
            self.stats.comm_time += self.clock - before;
            self.stats.msgs_received += 1;
            self.stats.bytes_received += env.modeled_bytes;
            if self.trace_detail() == Some(TraceDetail::Messages) {
                self.trace_span(
                    before,
                    EventKind::RecvMsg {
                        peer: req.src as u32,
                        bytes: env.modeled_bytes,
                    },
                );
            }
            self.maybe_fail();
            out.push(env.payload);
        }
        if n_msgs > 0 {
            if let Some(detail) = self.trace_detail() {
                if detail >= TraceDetail::Collectives {
                    self.trace_instant(EventKind::Overlap {
                        msgs: n_msgs,
                        hidden,
                        exposed,
                    });
                }
            }
        }
        out
    }

    pub(crate) fn next_collective_epoch(&mut self) -> u64 {
        let e = self.coll_epoch;
        self.coll_epoch += 1;
        e
    }

    /// Whether a trace sink is attached to this run.
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// Recording granularity, when tracing is enabled.
    #[inline]
    pub fn trace_detail(&self) -> Option<TraceDetail> {
        self.tracer.as_ref().map(RankTracer::detail)
    }

    /// Records a span from virtual time `start` to the current clock.
    /// No-op (one branch) when tracing is disabled.
    #[inline]
    pub fn trace_span(&mut self, start: f64, kind: EventKind) {
        if let Some(t) = self.tracer.as_mut() {
            let dur = self.clock - start;
            t.record(start, dur, kind);
        }
    }

    /// Records an instant event at the current clock. No-op (one branch)
    /// when tracing is disabled.
    #[inline]
    pub fn trace_instant(&mut self, kind: EventKind) {
        if let Some(t) = self.tracer.as_mut() {
            t.record(self.clock, 0.0, kind);
        }
    }

    /// Records a collective span if the detail level covers collectives.
    /// `start_clock`/`start_bytes` are the clock and `bytes_sent` counter
    /// captured on entry to the operation.
    #[inline]
    pub(crate) fn trace_collective(
        &mut self,
        op: &'static str,
        start_clock: f64,
        start_bytes: f64,
    ) {
        if let Some(t) = self.tracer.as_mut() {
            if t.detail() >= TraceDetail::Collectives {
                let bytes = self.stats.bytes_sent - start_bytes;
                let dur = self.clock - start_clock;
                t.record(start_clock, dur, EventKind::Collective { op, bytes });
            }
        }
    }

    /// Drains this rank's staging buffer into the shared sink. Called at
    /// barriers; the buffer also drains on overflow and when the rank's
    /// communicator is dropped (normal exit *and* fault/poison unwinds).
    pub(crate) fn flush_trace(&mut self) {
        if let Some(t) = self.tracer.as_mut() {
            t.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_spmd, SpmdConfig};

    fn cfg(size: usize) -> SpmdConfig {
        SpmdConfig {
            size,
            topo: ClusterTopology::uniform(size.div_ceil(4).max(1), 4),
            net: NetworkModel::gigabit_ethernet(),
            compute: ComputeModel::new(1e9, 4e9),
            seed: 42,
        }
    }

    #[test]
    fn ping_pong_delivers_data_and_advances_clocks() {
        let mut c = cfg(2);
        c.topo = ClusterTopology::uniform(2, 1); // force inter-node traffic
        let results = run_spmd(c, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, Payload::F64(vec![1.0, 2.0, 3.0]));
                comm.recv_f64(1, 8)
            } else {
                let v = comm.recv_f64(0, 7);
                let doubled: Vec<f64> = v.iter().map(|x| 2.0 * x).collect();
                comm.send(0, 8, Payload::F64(doubled.clone()));
                doubled
            }
        });
        assert_eq!(results[0].value, vec![2.0, 4.0, 6.0]);
        // Rank 0's clock covers a full round trip: at least 2 latencies.
        assert!(
            results[0].clock > 2.0 * 45e-6,
            "clock = {}",
            results[0].clock
        );
    }

    #[test]
    fn messages_between_same_pair_preserve_order() {
        let results = run_spmd(cfg(2), |comm| {
            if comm.rank() == 0 {
                for i in 0..10 {
                    comm.send(1, 5, Payload::F64(vec![i as f64]));
                }
                vec![]
            } else {
                (0..10).map(|_| comm.recv_f64(0, 5)[0]).collect()
            }
        });
        assert_eq!(
            results[1].value,
            (0..10).map(|i| i as f64).collect::<Vec<_>>()
        );
    }

    #[test]
    fn tags_demultiplex() {
        let results = run_spmd(cfg(2), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, Payload::F64(vec![1.0]));
                comm.send(1, 2, Payload::F64(vec![2.0]));
                0.0
            } else {
                // Receive in reverse tag order.
                let b = comm.recv_f64(0, 2)[0];
                let a = comm.recv_f64(0, 1)[0];
                10.0 * a + b
            }
        });
        assert_eq!(results[1].value, 12.0);
    }

    #[test]
    fn compute_advances_clock_deterministically() {
        let results = run_spmd(cfg(1), |comm| {
            comm.compute(Work::new(2e9, 1e9));
            comm.clock()
        });
        // 2e9 flops at 1e9 flop/s = 2 s (compute-bound vs 0.25 s mem time).
        assert!((results[0].value - 2.0).abs() < 1e-9);
    }

    #[test]
    fn same_seed_same_clocks() {
        let run = || {
            run_spmd(cfg(4), |comm| {
                let right = (comm.rank() + 1) % comm.size();
                let left = (comm.rank() + comm.size() - 1) % comm.size();
                for _ in 0..5 {
                    comm.send(right, 1, Payload::F64(vec![0.5; 1000]));
                    let _ = comm.recv_f64(left, 1);
                }
                comm.clock()
            })
        };
        let a = run();
        let b = run();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.value, y.value);
        }
    }

    #[test]
    fn different_seed_different_clocks_with_jitter() {
        let mut c1 = cfg(2);
        c1.net = NetworkModel::ten_gig_ethernet_ec2();
        c1.topo = ClusterTopology::uniform(2, 1);
        let mut c2 = c1.clone();
        c2.seed = 43;
        let body = |comm: &mut SimComm| {
            if comm.rank() == 0 {
                comm.send(1, 1, Payload::F64(vec![0.0; 4096]));
                0.0
            } else {
                let _ = comm.recv_f64(0, 1);
                comm.clock()
            }
        };
        let a = run_spmd(c1, body);
        let b = run_spmd(c2, body);
        assert_ne!(a[1].value, b[1].value);
    }

    #[test]
    fn intra_node_messages_are_cheaper() {
        // Two ranks on one node vs two ranks on two nodes.
        let mut on_one = cfg(2);
        on_one.topo = ClusterTopology::uniform(1, 4);
        let mut on_two = cfg(2);
        on_two.topo = ClusterTopology::uniform(2, 1);
        let body = |comm: &mut SimComm| {
            if comm.rank() == 0 {
                comm.send(1, 1, Payload::F64(vec![1.0; 10_000]));
                0.0
            } else {
                let _ = comm.recv_f64(0, 1);
                comm.clock()
            }
        };
        let same = run_spmd(on_one, body);
        let cross = run_spmd(on_two, body);
        assert!(same[1].value < cross[1].value / 5.0);
    }

    #[test]
    fn stats_track_traffic() {
        let results = run_spmd(cfg(2), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, Payload::F64(vec![0.0; 100]));
            } else {
                let _ = comm.recv(0, 1);
            }
            *comm.stats()
        });
        assert_eq!(results[0].value.msgs_sent, 1);
        assert_eq!(results[0].value.bytes_sent, 800.0 + 64.0);
        assert_eq!(results[1].value.msgs_received, 1);
        assert!(results[1].value.comm_time > 0.0);
    }

    #[test]
    fn modeled_bytes_override_prices_the_virtual_size() {
        let mut c = cfg(2);
        c.topo = ClusterTopology::uniform(2, 1);
        let results = run_spmd(c, |comm| {
            if comm.rank() == 0 {
                comm.send_with_modeled_bytes(1, 1, Payload::Empty, 117e6);
                0.0
            } else {
                let _ = comm.recv(0, 1);
                comm.clock()
            }
        });
        // 117 MB at ~117 MB/s should take about a second.
        assert!(results[1].value > 0.5, "clock = {}", results[1].value);
    }

    #[test]
    #[should_panic(expected = "destination rank out of range")]
    fn send_out_of_range_panics() {
        run_spmd(cfg(1), |comm| comm.send(5, 0, Payload::Empty));
    }

    #[test]
    fn immediate_wait_matches_blocking_recv() {
        // With no compute between post and wait, the overlap model must
        // degenerate to exactly the blocking recv cost.
        let mut c = cfg(2);
        c.topo = ClusterTopology::uniform(2, 1);
        let body_blocking = |comm: &mut SimComm| {
            if comm.rank() == 0 {
                comm.send(1, 1, Payload::F64(vec![1.5; 5000]));
                (vec![], 0.0)
            } else {
                let v = comm.recv_f64(0, 1);
                (v, comm.clock())
            }
        };
        let body_nonblocking = |comm: &mut SimComm| {
            if comm.rank() == 0 {
                let _ = comm.isend(1, 1, Payload::F64(vec![1.5; 5000]));
                (vec![], 0.0)
            } else {
                let req = comm.irecv(0, 1);
                let v = match comm.wait(req) {
                    Payload::F64(v) => v,
                    other => panic!("expected F64, got {other:?}"),
                };
                (v, comm.clock())
            }
        };
        let a = run_spmd(c.clone(), body_blocking);
        let b = run_spmd(c, body_nonblocking);
        assert_eq!(a[1].value, b[1].value);
    }

    #[test]
    fn compute_between_post_and_wait_hides_transfer() {
        let mut c = cfg(2);
        c.topo = ClusterTopology::uniform(2, 1);
        let big = Payload::F64(vec![0.25; 200_000]); // ~1.6 MB: drain-dominated
        let overlap_work = Work::new(5e8, 0.0); // 0.5 virtual seconds
        let blocking = {
            let big = big.clone();
            run_spmd(c.clone(), move |comm| {
                if comm.rank() == 0 {
                    comm.send(1, 1, big.clone());
                    0.0
                } else {
                    let _ = comm.recv(0, 1);
                    comm.compute(overlap_work);
                    comm.clock()
                }
            })
        };
        let overlapped = run_spmd(c, move |comm| {
            if comm.rank() == 0 {
                let _ = comm.isend(1, 1, big.clone());
                0.0
            } else {
                let req = comm.irecv(0, 1);
                comm.compute(overlap_work); // transfer progresses underneath
                let _ = comm.wait(req);
                comm.clock()
            }
        });
        // Same total work + traffic, but the overlapped schedule finishes
        // earlier because the drain ran during the compute.
        assert!(
            overlapped[1].value < blocking[1].value - 0.01,
            "overlapped {} vs blocking {}",
            overlapped[1].value,
            blocking[1].value
        );
        // And never earlier than the compute alone.
        assert!(overlapped[1].value >= 0.5);
    }

    #[test]
    fn wait_all_returns_payloads_in_request_order() {
        let r = run_spmd(cfg(3), |comm| {
            if comm.rank() == 0 {
                let reqs = vec![comm.irecv(2, 4), comm.irecv(1, 4)];
                comm.wait_all(reqs)
                    .into_iter()
                    .map(|p| match p {
                        Payload::F64(v) => v[0],
                        other => panic!("expected F64, got {other:?}"),
                    })
                    .collect()
            } else {
                let _ = comm.isend(0, 4, Payload::F64(vec![comm.rank() as f64]));
                vec![]
            }
        });
        assert_eq!(r[0].value, vec![2.0, 1.0]);
    }

    #[test]
    fn overlapped_clocks_are_deterministic() {
        let run = || {
            run_spmd(cfg(4), |comm| {
                let right = (comm.rank() + 1) % comm.size();
                let left = (comm.rank() + comm.size() - 1) % comm.size();
                for _ in 0..4 {
                    let _ = comm.isend(right, 9, Payload::F64(vec![1.0; 2000]));
                    let req = comm.irecv(left, 9);
                    comm.compute(Work::new(1e7, 0.0));
                    let _ = comm.wait(req);
                }
                comm.clock()
            })
        };
        let a = run();
        let b = run();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.value, y.value);
        }
    }
}
