//! The SPMD execution engine: one OS thread per simulated rank.

use crate::comm::{SharedComm, SimComm};
use crate::network::NetworkModel;
use crate::stats::CommStats;
use crate::topology::ClusterTopology;
use crate::work::ComputeModel;
use std::panic::AssertUnwindSafe;

/// Upper bound on real threads; beyond this, use the analytic engine in
/// [`crate::modeled`] instead.
pub const MAX_REAL_RANKS: usize = 4096;

/// Configuration of one simulated SPMD job.
#[derive(Debug, Clone)]
pub struct SpmdConfig {
    /// Number of MPI ranks.
    pub size: usize,
    /// Node/core/placement-group layout.
    pub topo: ClusterTopology,
    /// Interconnect model.
    pub net: NetworkModel,
    /// Per-core compute model.
    pub compute: ComputeModel,
    /// Experiment seed (drives message jitter only).
    pub seed: u64,
}

/// What one rank produced: its return value, final virtual clock, and
/// counters.
#[derive(Debug, Clone)]
pub struct RankResult<T> {
    /// The rank id.
    pub rank: usize,
    /// The closure's return value.
    pub value: T,
    /// The rank's virtual clock at exit, in seconds.
    pub clock: f64,
    /// Accumulated communication/compute counters.
    pub stats: CommStats,
}

/// Runs `f` as an SPMD program on `config.size` simulated ranks, each on its
/// own OS thread, and returns the per-rank results ordered by rank.
///
/// The closure receives the rank's [`SimComm`]; ranks coordinate only
/// through it. Virtual time is deterministic for a fixed `config`.
///
/// # Panics
/// Panics if any rank panics (the first panic is propagated; blocked peers
/// are woken and unwound), or if `config.size` exceeds [`MAX_REAL_RANKS`] or
/// the topology's core capacity.
pub fn run_spmd<T, F>(config: SpmdConfig, f: F) -> Vec<RankResult<T>>
where
    T: Send,
    F: Fn(&mut SimComm) -> T + Send + Sync,
{
    assert!(
        config.size <= MAX_REAL_RANKS,
        "{} ranks exceed the real-thread engine limit ({MAX_REAL_RANKS}); use hetero_simmpi::modeled",
        config.size
    );
    let shared = SharedComm::new(
        config.size,
        config.topo,
        config.net,
        config.compute,
        config.seed,
    );

    let mut slots: Vec<Option<Result<RankResult<T>, String>>> =
        (0..config.size).map(|_| None).collect();

    std::thread::scope(|scope| {
        let shared = &shared;
        let f = &f;
        let handles: Vec<_> = (0..config.size)
            .map(|rank| {
                scope.spawn(move || {
                    let mut comm = SimComm::new(rank, shared.clone());
                    let out = std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut comm)));
                    match out {
                        Ok(value) => Ok(RankResult {
                            rank,
                            value,
                            clock: comm.clock(),
                            stats: *comm.stats(),
                        }),
                        Err(payload) => {
                            // Wake peers blocked in recv so the job unwinds
                            // instead of deadlocking.
                            shared.poison();
                            let msg = payload
                                .downcast_ref::<&str>()
                                .map(|s| s.to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "<non-string panic>".into());
                            Err(msg)
                        }
                    }
                })
            })
            .collect();
        for (rank, h) in handles.into_iter().enumerate() {
            slots[rank] = Some(
                h.join()
                    .unwrap_or_else(|_| Err("rank thread crashed".into())),
            );
        }
    });

    let mut results = Vec::with_capacity(config.size);
    let mut first_err: Option<(usize, String)> = None;
    for (rank, slot) in slots.into_iter().enumerate() {
        match slot.expect("every rank produces a result") {
            Ok(r) => results.push(r),
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some((rank, e));
                }
            }
        }
    }
    if let Some((rank, e)) = first_err {
        panic!("rank {rank} panicked: {e}");
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Payload;

    fn cfg(size: usize) -> SpmdConfig {
        SpmdConfig {
            size,
            topo: ClusterTopology::uniform(size, 1),
            net: NetworkModel::ideal(),
            compute: ComputeModel::new(1e9, 1e9),
            seed: 0,
        }
    }

    #[test]
    fn results_are_ordered_by_rank() {
        let r = run_spmd(cfg(8), |comm| comm.rank() * 10);
        for (i, res) in r.iter().enumerate() {
            assert_eq!(res.rank, i);
            assert_eq!(res.value, i * 10);
        }
    }

    #[test]
    fn single_rank_job() {
        let r = run_spmd(cfg(1), |comm| comm.size());
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].value, 1);
        assert_eq!(r[0].clock, 0.0);
    }

    #[test]
    #[should_panic(expected = "rank 2 panicked")]
    fn rank_panic_propagates() {
        run_spmd(cfg(4), |comm| {
            if comm.rank() == 2 {
                panic!("boom at rank 2");
            }
        });
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn panic_unblocks_waiting_peers() {
        // Rank 0 waits for a message that will never come because rank 1
        // panics; the job must unwind, not deadlock.
        run_spmd(cfg(2), |comm| {
            if comm.rank() == 0 {
                let _ = comm.recv(1, 9);
            } else {
                panic!("sender died");
            }
        });
    }

    #[test]
    fn many_ranks_work() {
        let r = run_spmd(cfg(64), |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 0, Payload::Usize(vec![comm.rank()]));
            comm.recv_usize(prev, 0)[0]
        });
        for (i, res) in r.iter().enumerate() {
            assert_eq!(res.value, (i + 64 - 1) % 64);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds cluster capacity")]
    fn oversubscribed_topology_rejected() {
        let mut c = cfg(4);
        c.topo = ClusterTopology::uniform(1, 2);
        run_spmd(c, |_| ());
    }
}
