//! The SPMD execution engines: an M:N cooperative scheduler (default) and
//! the legacy one-OS-thread-per-rank engine kept for A/B pinning.
//!
//! Both engines execute the same rank bodies over the same [`SimComm`]
//! plumbing, and every result is a pure function of `(config, faults, f)`,
//! so reports are byte-identical across engines and across worker-pool
//! sizes. The cooperative engine multiplexes ranks as stackful coroutines
//! onto a fixed worker pool (see `crate::sched` and `DESIGN.md` §9),
//! which removes per-rank thread spawn/teardown and raises the real-engine
//! ceiling from [`MAX_THREAD_RANKS`] to [`MAX_REAL_RANKS`].

use crate::comm::{SharedComm, SimComm};
use crate::fault::{FaultPanic, FaultPlan, RankFailed};
use crate::network::NetworkModel;
use crate::sched;
use crate::stats::CommStats;
use crate::topology::ClusterTopology;
use crate::work::ComputeModel;
use hetero_trace::{Trace, TraceSink, TraceSpec};
use serde::{Deserialize, Serialize};
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Mutex};

/// Upper bound on simulated ranks under the cooperative engine; beyond
/// this, use the analytic engine in [`crate::modeled`] instead.
pub const MAX_REAL_RANKS: usize = 131_072;

/// Upper bound on ranks under the legacy thread-per-rank engine, which
/// spends a real OS thread (and its stack) per rank.
pub const MAX_THREAD_RANKS: usize = 4096;

/// Default coroutine stack size. Stacks are heap allocations the OS commits
/// lazily, so idle ranks cost address space, not resident memory.
pub const DEFAULT_TASK_STACK_BYTES: usize = 1 << 20;

/// Whether this build can run the cooperative engine (the context switch is
/// implemented for the System-V flavours of x86_64 and aarch64). Elsewhere
/// engine selection silently falls back to the thread engine.
pub const COOPERATIVE_SUPPORTED: bool = cfg!(all(
    not(target_os = "windows"),
    any(target_arch = "x86_64", target_arch = "aarch64")
));

/// Which SPMD engine executes the ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EngineKind {
    /// M:N scheduler: ranks are cooperative tasks on a fixed worker pool.
    #[default]
    Cooperative,
    /// Legacy engine: one OS thread per rank.
    Threads,
}

/// Engine selection and tuning for one SPMD run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOpts {
    /// Engine choice. [`EngineKind::Cooperative`] falls back to threads on
    /// targets where [`COOPERATIVE_SUPPORTED`] is false.
    pub engine: EngineKind,
    /// Cooperative worker-pool size; 0 picks the host parallelism. Results
    /// are byte-identical at any value. Ignored by the thread engine.
    pub workers: usize,
    /// Per-rank coroutine stack size in bytes; 0 picks
    /// [`DEFAULT_TASK_STACK_BYTES`]. Ignored by the thread engine.
    pub stack_bytes: usize,
}

impl Default for EngineOpts {
    fn default() -> Self {
        EngineOpts {
            engine: EngineKind::default(),
            workers: 0,
            stack_bytes: DEFAULT_TASK_STACK_BYTES,
        }
    }
}

impl EngineOpts {
    /// Cooperative engine with an explicit worker-pool size (0 = auto).
    pub fn cooperative(workers: usize) -> Self {
        EngineOpts {
            engine: EngineKind::Cooperative,
            workers,
            ..Self::default()
        }
    }

    /// The legacy thread-per-rank engine.
    pub fn threads() -> Self {
        EngineOpts {
            engine: EngineKind::Threads,
            ..Self::default()
        }
    }
}

/// Configuration of one simulated SPMD job.
#[derive(Debug, Clone)]
pub struct SpmdConfig {
    /// Number of MPI ranks.
    pub size: usize,
    /// Node/core/placement-group layout.
    pub topo: ClusterTopology,
    /// Interconnect model.
    pub net: NetworkModel,
    /// Per-core compute model.
    pub compute: ComputeModel,
    /// Experiment seed (drives message jitter only).
    pub seed: u64,
}

/// What one rank produced: its return value, final virtual clock, and
/// counters.
#[derive(Debug, Clone)]
pub struct RankResult<T> {
    /// The rank id.
    pub rank: usize,
    /// The closure's return value.
    pub value: T,
    /// The rank's virtual clock at exit, in seconds.
    pub clock: f64,
    /// Accumulated communication/compute counters.
    pub stats: CommStats,
}

/// How one rank ended.
enum RankOutcome<T> {
    /// Closure returned normally.
    Ok(RankResult<T>),
    /// The rank observed its node's scheduled loss.
    Fault(RankFailed),
    /// The rank unwound because a peer poisoned the job; not the root
    /// cause, so it carries no information of its own.
    Poisoned,
    /// A genuine application panic.
    Panic(String),
}

/// Best-effort string form of a panic payload, for diagnostics.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic>".into())
}

/// Maps an unwound rank body to its outcome (shared by both engines).
fn outcome_of_unwind<T>(payload: Box<dyn std::any::Any + Send>) -> RankOutcome<T> {
    if let Some(fp) = payload.downcast_ref::<FaultPanic>() {
        // Injected node loss; peers blocked on this rank's messages unwind
        // via the termination flag.
        RankOutcome::Fault(fp.0)
    } else {
        let msg = panic_message(payload.as_ref());
        if msg.starts_with("job poisoned:") {
            // Collateral unwind; the root cause is reported by whichever
            // rank died first (or by the deadlock report).
            RankOutcome::Poisoned
        } else {
            RankOutcome::Panic(msg)
        }
    }
}

/// Runs `f` as an SPMD program on `config.size` simulated ranks under the
/// default engine, and returns the per-rank results ordered by rank.
///
/// The closure receives the rank's [`SimComm`]; ranks coordinate only
/// through it. Virtual time is deterministic for a fixed `config`.
///
/// # Panics
/// Panics if any rank panics (the first panic is propagated; blocked peers
/// are woken and unwound), or if `config.size` exceeds the engine's rank
/// limit or the topology's core capacity.
pub fn run_spmd<T, F>(config: SpmdConfig, f: F) -> Vec<RankResult<T>>
where
    T: Send,
    F: Fn(&mut SimComm) -> T + Send + Sync,
{
    run_spmd_with_faults(config, FaultPlan::none(), f)
        .expect("a trivial fault plan cannot fail a rank")
}

/// Injected node losses and poison-path wakeups are control flow, not
/// errors: keep the default panic hook from printing a message + backtrace
/// for every one of them. Installed once, delegates real panics unchanged.
fn silence_fault_unwinds() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let poisoned = payload
                .downcast_ref::<&str>()
                .map(|s| s.starts_with("job poisoned:"))
                .or_else(|| {
                    payload
                        .downcast_ref::<String>()
                        .map(|s| s.starts_with("job poisoned:"))
                })
                .unwrap_or(false);
            if poisoned || payload.downcast_ref::<FaultPanic>().is_some() {
                return;
            }
            previous(info);
        }));
    });
}

/// Runs `f` like [`run_spmd`], but under a [`FaultPlan`]: each rank watches
/// its node's scheduled loss time against its own virtual clock, and the
/// first (in virtual time, tie-broken by node id) observed loss is returned
/// as `Err(RankFailed)`.
///
/// The failure is deterministic regardless of engine or worker pool: every
/// rank's virtual trajectory is a function of the program and the plan
/// alone, so *which* ranks observe their node's death — and at what virtual
/// time — never depends on host scheduling. Ranks blocked on a dead peer
/// are woken through the poison path and do not count as failures.
///
/// # Errors
/// Returns the earliest observed node loss (ordered by virtual time, then
/// node id) when the plan fells a node mid-run.
///
/// # Panics
/// Panics if any rank raises a genuine application panic (fault- and
/// poison-unwinds excluded), or on the size/capacity violations of
/// [`run_spmd`].
pub fn run_spmd_with_faults<T, F>(
    config: SpmdConfig,
    faults: FaultPlan,
    f: F,
) -> Result<Vec<RankResult<T>>, RankFailed>
where
    T: Send,
    F: Fn(&mut SimComm) -> T + Send + Sync,
{
    run_spmd_inner(config, EngineOpts::default(), faults, None, f)
}

/// Runs `f` like [`run_spmd_with_faults`] with trace recording attached:
/// every rank stamps events with its virtual clock and the merged
/// [`Trace`] is returned alongside the result.
///
/// The trace is a pure function of `(config, faults, f)` — byte-identical
/// across engines and host thread counts. That holds even when the run
/// fails (`Err(RankFailed)`): a rank unwinds either at its own
/// deterministic node-loss clock or when a message it waits on provably
/// cannot arrive, both virtual-time-determined conditions. A failed run's
/// per-rank spans still describe work the caller will roll back, which is
/// why the recovery layer keeps only campaign-level events from failed
/// attempts.
pub fn run_spmd_traced<T, F>(
    config: SpmdConfig,
    faults: FaultPlan,
    spec: TraceSpec,
    f: F,
) -> (Result<Vec<RankResult<T>>, RankFailed>, Trace)
where
    T: Send,
    F: Fn(&mut SimComm) -> T + Send + Sync,
{
    let (result, trace) = run_spmd_opts(config, EngineOpts::default(), faults, Some(spec), f);
    (
        result,
        trace.expect("a spec was passed, so a trace comes back"),
    )
}

/// The fully general entry point: engine selection, fault plan, and
/// optional tracing in one call. `trace` is `Some` to record a [`Trace`]
/// (returned as the second tuple element), `None` to skip recording.
///
/// # Errors
/// As [`run_spmd_with_faults`].
///
/// # Panics
/// As [`run_spmd_with_faults`]; additionally panics with a deterministic
/// report if the program deadlocks under the cooperative engine (the
/// thread engine would hang instead).
pub fn run_spmd_opts<T, F>(
    config: SpmdConfig,
    opts: EngineOpts,
    faults: FaultPlan,
    trace: Option<TraceSpec>,
    f: F,
) -> (Result<Vec<RankResult<T>>, RankFailed>, Option<Trace>)
where
    T: Send,
    F: Fn(&mut SimComm) -> T + Send + Sync,
{
    match trace {
        Some(spec) => {
            let sink = TraceSink::new(spec);
            let result = run_spmd_inner(config, opts, faults, Some(sink.clone()), f);
            (result, Some(sink.finish()))
        }
        None => (run_spmd_inner(config, opts, faults, None, f), None),
    }
}

fn run_spmd_inner<T, F>(
    config: SpmdConfig,
    opts: EngineOpts,
    faults: FaultPlan,
    trace: Option<Arc<TraceSink>>,
    f: F,
) -> Result<Vec<RankResult<T>>, RankFailed>
where
    T: Send,
    F: Fn(&mut SimComm) -> T + Send + Sync,
{
    silence_fault_unwinds();
    let cooperative = opts.engine == EngineKind::Cooperative && COOPERATIVE_SUPPORTED;
    if cooperative {
        run_cooperative(config, opts, faults, trace, f)
    } else {
        run_threads(config, faults, trace, f)
    }
}

/// Cooperative worker-pool size: explicit request, else host parallelism,
/// always within `[1, size]`.
fn resolve_workers(requested: usize, size: usize) -> usize {
    let w = if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(32)
    } else {
        requested
    };
    w.clamp(1, size.max(1))
}

/// The M:N engine: ranks as stackful coroutines on a fixed worker pool.
fn run_cooperative<T, F>(
    config: SpmdConfig,
    opts: EngineOpts,
    faults: FaultPlan,
    trace: Option<Arc<TraceSink>>,
    f: F,
) -> Result<Vec<RankResult<T>>, RankFailed>
where
    T: Send,
    F: Fn(&mut SimComm) -> T + Send + Sync,
{
    assert!(
        config.size <= MAX_REAL_RANKS,
        "{} ranks exceed the cooperative engine limit ({MAX_REAL_RANKS}); use hetero_simmpi::modeled",
        config.size
    );
    let size = config.size;
    let scheduler = sched::Scheduler::new(size);
    let shared = SharedComm::new(
        size,
        config.topo,
        config.net,
        config.compute,
        config.seed,
        faults,
        trace,
        Some(scheduler.clone()),
    );
    let stack_bytes = if opts.stack_bytes == 0 {
        DEFAULT_TASK_STACK_BYTES
    } else {
        opts.stack_bytes
    };
    let workers = resolve_workers(opts.workers, size);

    let slots: Vec<Mutex<Option<RankOutcome<T>>>> = (0..size).map(|_| Mutex::new(None)).collect();
    let mut tasks: Vec<Box<sched::TaskCtl>> = (0..size)
        .map(|rank| {
            let shared = shared.clone();
            let f = &f;
            let slot = &slots[rank];
            let body: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let mut comm = SimComm::new(rank, shared);
                let out = std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut comm)));
                let outcome = match out {
                    Ok(value) => RankOutcome::Ok(RankResult {
                        rank,
                        value,
                        clock: comm.clock(),
                        stats: *comm.stats(),
                    }),
                    Err(payload) => outcome_of_unwind(payload),
                };
                *slot
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(outcome);
            });
            // Erasure is sound: every task runs to completion inside the
            // scope below, which the borrows of `f`/`slots`/`shared` outlive.
            sched::TaskCtl::new(rank, stack_bytes, sched::erase_task_lifetime(body))
        })
        .collect();
    let table = sched::TaskTable::new(&mut tasks);

    std::thread::scope(|scope| {
        for _ in 1..workers {
            let scheduler = &scheduler;
            let shared = &shared;
            let table = &table;
            scope.spawn(move || scheduler.worker_loop(shared, table));
        }
        // The calling thread is worker 0: a single-worker run spawns no
        // threads at all.
        scheduler.worker_loop(&shared, &table);
    });
    drop(table);

    let deadlock = scheduler.deadlock_report();
    let outcomes: Vec<Option<RankOutcome<T>>> = slots
        .into_iter()
        .zip(tasks.iter_mut())
        .map(|(slot, task)| {
            Some(
                match slot
                    .into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                {
                    Some(o) => o,
                    // The body never stored an outcome: an unwind escaped
                    // its catch_unwind. Propagate the captured payload.
                    None => RankOutcome::Panic(format!(
                        "rank task crashed: {}",
                        task.crash_message()
                            .unwrap_or_else(|| "no outcome recorded".into())
                    )),
                },
            )
        })
        .collect();
    collect_outcomes(outcomes, deadlock)
}

/// The legacy engine: one OS thread per rank, condvar-blocked mailboxes.
fn run_threads<T, F>(
    config: SpmdConfig,
    faults: FaultPlan,
    trace: Option<Arc<TraceSink>>,
    f: F,
) -> Result<Vec<RankResult<T>>, RankFailed>
where
    T: Send,
    F: Fn(&mut SimComm) -> T + Send + Sync,
{
    assert!(
        config.size <= MAX_THREAD_RANKS,
        "{} ranks exceed the thread engine limit ({MAX_THREAD_RANKS}); use the cooperative engine",
        config.size
    );
    let shared = SharedComm::new(
        config.size,
        config.topo,
        config.net,
        config.compute,
        config.seed,
        faults,
        trace,
        None,
    );

    let mut slots: Vec<Option<RankOutcome<T>>> = (0..config.size).map(|_| None).collect();

    std::thread::scope(|scope| {
        let shared = &shared;
        let f = &f;
        let handles: Vec<_> = (0..config.size)
            .map(|rank| {
                scope.spawn(move || {
                    let mut comm = SimComm::new(rank, shared.clone());
                    let out = std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut comm)));
                    let outcome = match out {
                        Ok(value) => RankOutcome::Ok(RankResult {
                            rank,
                            value,
                            clock: comm.clock(),
                            stats: *comm.stats(),
                        }),
                        Err(payload) => outcome_of_unwind(payload),
                    };
                    // Whatever the exit reason, tell blocked receivers this
                    // rank will send nothing more. Failure then cascades
                    // only along real wait-for dependencies, keeping every
                    // survivor's unwind point virtual-time-deterministic.
                    shared.mark_terminated(rank);
                    outcome
                })
            })
            .collect();
        for (rank, h) in handles.into_iter().enumerate() {
            slots[rank] = Some(h.join().unwrap_or_else(|payload| {
                // The unwind escaped the body's catch_unwind (it happened
                // in SimComm setup or teardown); keep the payload so the
                // failure stays diagnosable.
                RankOutcome::Panic(format!(
                    "rank thread crashed: {}",
                    panic_message(payload.as_ref())
                ))
            }));
        }
    });

    collect_outcomes(slots, None)
}

/// Folds per-rank outcomes into the engine result. Shared by both engines
/// so failure precedence is identical: first application panic (by rank),
/// then earliest injected fault, then a cooperative deadlock report.
fn collect_outcomes<T>(
    slots: Vec<Option<RankOutcome<T>>>,
    deadlock: Option<String>,
) -> Result<Vec<RankResult<T>>, RankFailed> {
    let size = slots.len();
    let mut results = Vec::with_capacity(size);
    let mut first_fault: Option<RankFailed> = None;
    let mut first_panic: Option<(usize, String)> = None;
    let mut poisoned_without_cause = false;
    for (rank, slot) in slots.into_iter().enumerate() {
        match slot.expect("every rank produces a result") {
            RankOutcome::Ok(r) => results.push(r),
            RankOutcome::Fault(rf) => {
                // Earliest loss in virtual time wins; node id breaks ties so
                // the selection is a pure function of the plan.
                let earlier = first_fault
                    .map(|cur| (rf.at, rf.node) < (cur.at, cur.node))
                    .unwrap_or(true);
                if earlier {
                    first_fault = Some(rf);
                }
            }
            RankOutcome::Poisoned => poisoned_without_cause = true,
            RankOutcome::Panic(e) => {
                if first_panic.is_none() {
                    first_panic = Some((rank, e));
                }
            }
        }
    }
    if let Some((rank, e)) = first_panic {
        panic!("rank {rank} panicked: {e}");
    }
    if let Some(rf) = first_fault {
        return Err(rf);
    }
    if let Some(report) = deadlock {
        panic!("{report}");
    }
    assert!(
        !poisoned_without_cause,
        "job poisoned but no rank reported a root cause"
    );
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Payload;
    use crate::fault::SlowWindow;
    use crate::work::Work;

    fn cfg(size: usize) -> SpmdConfig {
        SpmdConfig {
            size,
            topo: ClusterTopology::uniform(size, 1),
            net: NetworkModel::ideal(),
            compute: ComputeModel::new(1e9, 1e9),
            seed: 0,
        }
    }

    #[test]
    fn results_are_ordered_by_rank() {
        let r = run_spmd(cfg(8), |comm| comm.rank() * 10);
        for (i, res) in r.iter().enumerate() {
            assert_eq!(res.rank, i);
            assert_eq!(res.value, i * 10);
        }
    }

    #[test]
    fn single_rank_job() {
        let r = run_spmd(cfg(1), |comm| comm.size());
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].value, 1);
        assert_eq!(r[0].clock, 0.0);
    }

    #[test]
    #[should_panic(expected = "rank 2 panicked")]
    fn rank_panic_propagates() {
        run_spmd(cfg(4), |comm| {
            if comm.rank() == 2 {
                panic!("boom at rank 2");
            }
        });
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn panic_unblocks_waiting_peers() {
        // Rank 0 waits for a message that will never come because rank 1
        // panics; the job must unwind, not deadlock.
        run_spmd(cfg(2), |comm| {
            if comm.rank() == 0 {
                let _ = comm.recv(1, 9);
            } else {
                panic!("sender died");
            }
        });
    }

    #[test]
    fn many_ranks_work() {
        let r = run_spmd(cfg(64), |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 0, Payload::Usize(vec![comm.rank()]));
            comm.recv_usize(prev, 0)[0]
        });
        for (i, res) in r.iter().enumerate() {
            assert_eq!(res.value, (i + 64 - 1) % 64);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds cluster capacity")]
    fn oversubscribed_topology_rejected() {
        let mut c = cfg(4);
        c.topo = ClusterTopology::uniform(1, 2);
        run_spmd(c, |_| ());
    }

    #[test]
    fn node_loss_surfaces_as_err_not_deadlock() {
        // Rank 1's node dies at t = 1 s; rank 0 blocks on a message rank 1
        // will never send. The job must unwind and report the loss.
        let plan = FaultPlan {
            node_down_at: vec![f64::INFINITY, 1.0],
            slow_windows: vec![],
        };
        let out = run_spmd_with_faults(cfg(2), plan, |comm| {
            if comm.rank() == 0 {
                let _ = comm.recv(1, 3);
            } else {
                comm.compute(Work::new(5e9, 0.0)); // 5 virtual seconds > 1
                comm.send(0, 3, Payload::Empty);
            }
        });
        let rf = out.unwrap_err();
        assert_eq!(rf.node, 1);
        assert_eq!(rf.at, 1.0);
    }

    #[test]
    fn earliest_fault_wins_deterministically() {
        // Two independent nodes die; the report must name the earlier one
        // no matter which worker unwinds first.
        let plan = FaultPlan {
            node_down_at: vec![f64::INFINITY, 2.0, 0.5, f64::INFINITY],
            slow_windows: vec![],
        };
        for _ in 0..8 {
            let out = run_spmd_with_faults(cfg(4), plan.clone(), |comm| {
                comm.compute(Work::new(10e9, 0.0)); // 10 virtual seconds
            });
            let rf = out.unwrap_err();
            assert_eq!((rf.node, rf.at), (2, 0.5));
        }
    }

    #[test]
    fn traced_run_records_deterministic_ordered_events() {
        let body = |comm: &mut SimComm| {
            comm.compute(Work::new(1e9, 0.0));
            let _ = comm.allreduce_scalar(crate::collectives::ReduceOp::Sum, 1.0);
            comm.barrier();
            comm.clock()
        };
        let run = || {
            let (res, trace) =
                run_spmd_traced(cfg(4), FaultPlan::none(), TraceSpec::messages(), body);
            (res.unwrap(), trace)
        };
        let (res_a, trace_a) = run();
        let (_res_b, trace_b) = run();
        assert!(!trace_a.is_empty());
        // Identical configs give bitwise-identical traces and exports.
        assert_eq!(trace_a, trace_b);
        assert_eq!(trace_a.jsonl(), trace_b.jsonl());
        // Events are in canonical (at, rank, seq) order.
        let mut sorted = trace_a.clone();
        sorted.sort();
        assert_eq!(trace_a, sorted);
        // Collectives and p2p traffic both made it in.
        use hetero_trace::EventKind;
        assert!(trace_a
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Collective { op: "barrier", .. })));
        assert!(trace_a
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::SendMsg { .. })));
        // Tracing never perturbs virtual time.
        let untraced = run_spmd(cfg(4), body);
        for (t, u) in res_a.iter().zip(&untraced) {
            assert_eq!(t.value, u.value);
        }
    }

    #[test]
    fn trivial_plan_changes_nothing() {
        let body = |comm: &mut SimComm| {
            comm.compute(Work::new(1e9, 0.0));
            comm.clock()
        };
        let base = run_spmd(cfg(2), body);
        let faulted = run_spmd_with_faults(cfg(2), FaultPlan::none(), body).unwrap();
        assert_eq!(base[0].value, faulted[0].value);
        assert_eq!(base[1].value, faulted[1].value);
    }

    #[test]
    fn degradation_window_slows_covered_messages_only() {
        let clock_of = |windows: Vec<SlowWindow>| {
            let plan = FaultPlan {
                node_down_at: vec![],
                slow_windows: windows,
            };
            let mut c = cfg(2);
            c.net = NetworkModel::gigabit_ethernet();
            let r = run_spmd_with_faults(c, plan, |comm| {
                if comm.rank() == 0 {
                    comm.send(1, 1, Payload::F64(vec![0.0; 100_000]));
                    0.0
                } else {
                    let _ = comm.recv_f64(0, 1);
                    comm.clock()
                }
            })
            .unwrap();
            r[1].value
        };
        let clean = clock_of(vec![]);
        let covered = clock_of(vec![SlowWindow {
            start: 0.0,
            end: 10.0,
            factor: 4.0,
        }]);
        let missed = clock_of(vec![SlowWindow {
            start: 100.0,
            end: 110.0,
            factor: 4.0,
        }]);
        assert!(covered > 2.0 * clean, "{covered} vs {clean}");
        assert_eq!(missed, clean);
    }

    // ---- cooperative-engine specifics ----

    /// A small communication-heavy body whose result depends on real data
    /// movement, virtual clocks, and jitter.
    fn ring_body(comm: &mut SimComm) -> (f64, f64) {
        let right = (comm.rank() + 1) % comm.size();
        let left = (comm.rank() + comm.size() - 1) % comm.size();
        let mut acc = comm.rank() as f64;
        for step in 0..4 {
            comm.send(right, 7, Payload::F64(vec![acc; 200]));
            let v = comm.recv_f64(left, 7);
            acc += v[0] * 0.5;
            comm.compute(Work::new(1e7 * (step + 1) as f64, 1e6));
        }
        (acc, comm.clock())
    }

    #[test]
    fn engines_agree_bitwise() {
        if !COOPERATIVE_SUPPORTED {
            eprintln!("skipping: target lacks the M:N context switch");
            return;
        }
        let mut c = cfg(12);
        c.net = NetworkModel::ten_gig_ethernet_ec2();
        c.topo = ClusterTopology::uniform(3, 4);
        c.seed = 9;
        let run = |opts: EngineOpts| {
            let (res, _) = run_spmd_opts(c.clone(), opts, FaultPlan::none(), None, ring_body);
            res.unwrap()
                .into_iter()
                .map(|r| (r.value, r.clock.to_bits()))
                .collect::<Vec<_>>()
        };
        let threads = run(EngineOpts::threads());
        for workers in [1, 2, 4, 7] {
            assert_eq!(run(EngineOpts::cooperative(workers)), threads);
        }
    }

    #[test]
    fn cooperative_runs_past_the_thread_rank_limit() {
        let size = MAX_THREAD_RANKS + 904; // 5000 ranks
        let mut c = cfg(size);
        c.topo = ClusterTopology::uniform(size.div_ceil(16), 16);
        let r = run_spmd(c, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 0, Payload::Usize(vec![comm.rank()]));
            comm.recv_usize(prev, 0)[0]
        });
        assert_eq!(r.len(), size);
        for (i, res) in r.iter().enumerate() {
            assert_eq!(res.value, (i + size - 1) % size);
        }
    }

    #[test]
    fn deadlock_is_reported_not_hung() {
        // Ranks 0 and 1 both recv before sending: a 2-cycle.
        let err = std::panic::catch_unwind(|| {
            run_spmd(cfg(2), |comm| {
                let peer = 1 - comm.rank();
                let _ = comm.recv(peer, 5);
                comm.send(peer, 5, Payload::Empty);
            })
        })
        .unwrap_err();
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("job deadlocked"), "got: {msg}");
        assert!(
            msg.contains("rank 0 waits on recv(src=1, tag=5)"),
            "got: {msg}"
        );
        assert!(
            msg.contains("rank 1 waits on recv(src=0, tag=5)"),
            "got: {msg}"
        );
    }

    #[test]
    fn deadlock_report_is_deterministic() {
        let report = || {
            let err = std::panic::catch_unwind(|| {
                run_spmd(cfg(4), |comm| {
                    // 4-cycle: everyone waits on its left neighbour.
                    let left = (comm.rank() + comm.size() - 1) % comm.size();
                    let _ = comm.recv(left, 2);
                })
            })
            .unwrap_err();
            panic_message(err.as_ref())
        };
        assert_eq!(report(), report());
    }

    #[test]
    fn faulted_runs_agree_across_engines_and_pools() {
        let plan = FaultPlan {
            node_down_at: vec![f64::INFINITY, f64::INFINITY, 0.02, f64::INFINITY],
            slow_windows: vec![SlowWindow {
                start: 0.0,
                end: 0.01,
                factor: 3.0,
            }],
        };
        let mut c = cfg(8);
        c.net = NetworkModel::gigabit_ethernet();
        c.topo = ClusterTopology::uniform(4, 2);
        let run = |opts: EngineOpts| {
            let (res, _) = run_spmd_opts(c.clone(), opts, plan.clone(), None, ring_body);
            res.unwrap_err()
        };
        let t = run(EngineOpts::threads());
        for workers in [1, 3] {
            let c = run(EngineOpts::cooperative(workers));
            assert_eq!((c.node, c.at.to_bits()), (t.node, t.at.to_bits()));
        }
    }

    #[test]
    fn crash_outside_body_keeps_its_payload() {
        // `recv` panics a bounds assert *before* entering the body's
        // catch_unwind? No — easiest honest probe: a body panic with a
        // distinctive payload must survive into the engine panic message.
        let err = std::panic::catch_unwind(|| {
            run_spmd(cfg(2), |comm| {
                if comm.rank() == 1 {
                    panic!("distinctive payload 0xBEEF");
                }
                let _ = comm.recv(1, 1);
            })
        })
        .unwrap_err();
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("distinctive payload 0xBEEF"), "got: {msg}");
    }
}
