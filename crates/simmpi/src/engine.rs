//! The SPMD execution engine: one OS thread per simulated rank.

use crate::comm::{SharedComm, SimComm};
use crate::fault::{FaultPanic, FaultPlan, RankFailed};
use crate::network::NetworkModel;
use crate::stats::CommStats;
use crate::topology::ClusterTopology;
use crate::work::ComputeModel;
use hetero_trace::{Trace, TraceSink, TraceSpec};
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

/// Upper bound on real threads; beyond this, use the analytic engine in
/// [`crate::modeled`] instead.
pub const MAX_REAL_RANKS: usize = 4096;

/// Configuration of one simulated SPMD job.
#[derive(Debug, Clone)]
pub struct SpmdConfig {
    /// Number of MPI ranks.
    pub size: usize,
    /// Node/core/placement-group layout.
    pub topo: ClusterTopology,
    /// Interconnect model.
    pub net: NetworkModel,
    /// Per-core compute model.
    pub compute: ComputeModel,
    /// Experiment seed (drives message jitter only).
    pub seed: u64,
}

/// What one rank produced: its return value, final virtual clock, and
/// counters.
#[derive(Debug, Clone)]
pub struct RankResult<T> {
    /// The rank id.
    pub rank: usize,
    /// The closure's return value.
    pub value: T,
    /// The rank's virtual clock at exit, in seconds.
    pub clock: f64,
    /// Accumulated communication/compute counters.
    pub stats: CommStats,
}

/// How one rank's thread ended.
enum RankOutcome<T> {
    /// Closure returned normally.
    Ok(RankResult<T>),
    /// The rank observed its node's scheduled loss.
    Fault(RankFailed),
    /// The rank unwound because a peer poisoned the job; not the root
    /// cause, so it carries no information of its own.
    Poisoned,
    /// A genuine application panic.
    Panic(String),
}

/// Runs `f` as an SPMD program on `config.size` simulated ranks, each on its
/// own OS thread, and returns the per-rank results ordered by rank.
///
/// The closure receives the rank's [`SimComm`]; ranks coordinate only
/// through it. Virtual time is deterministic for a fixed `config`.
///
/// # Panics
/// Panics if any rank panics (the first panic is propagated; blocked peers
/// are woken and unwound), or if `config.size` exceeds [`MAX_REAL_RANKS`] or
/// the topology's core capacity.
pub fn run_spmd<T, F>(config: SpmdConfig, f: F) -> Vec<RankResult<T>>
where
    T: Send,
    F: Fn(&mut SimComm) -> T + Send + Sync,
{
    run_spmd_with_faults(config, FaultPlan::none(), f)
        .expect("a trivial fault plan cannot fail a rank")
}

/// Injected node losses and poison-path wakeups are control flow, not
/// errors: keep the default panic hook from printing a message + backtrace
/// for every one of them. Installed once, delegates real panics unchanged.
fn silence_fault_unwinds() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let poisoned = payload
                .downcast_ref::<&str>()
                .map(|s| s.starts_with("job poisoned:"))
                .or_else(|| {
                    payload
                        .downcast_ref::<String>()
                        .map(|s| s.starts_with("job poisoned:"))
                })
                .unwrap_or(false);
            if poisoned || payload.downcast_ref::<FaultPanic>().is_some() {
                return;
            }
            previous(info);
        }));
    });
}

/// Runs `f` like [`run_spmd`], but under a [`FaultPlan`]: each rank watches
/// its node's scheduled loss time against its own virtual clock, and the
/// first (in virtual time, tie-broken by node id) observed loss is returned
/// as `Err(RankFailed)`.
///
/// The failure is deterministic even though ranks run on racing OS threads:
/// every rank's virtual trajectory is a function of the program and the
/// plan alone, so *which* ranks observe their node's death — and at what
/// virtual time — never depends on host scheduling. Ranks blocked on a dead
/// peer are woken through the poison path and do not count as failures.
///
/// # Errors
/// Returns the earliest observed node loss (ordered by virtual time, then
/// node id) when the plan fells a node mid-run.
///
/// # Panics
/// Panics if any rank raises a genuine application panic (fault- and
/// poison-unwinds excluded), or on the size/capacity violations of
/// [`run_spmd`].
pub fn run_spmd_with_faults<T, F>(
    config: SpmdConfig,
    faults: FaultPlan,
    f: F,
) -> Result<Vec<RankResult<T>>, RankFailed>
where
    T: Send,
    F: Fn(&mut SimComm) -> T + Send + Sync,
{
    run_spmd_inner(config, faults, None, f)
}

/// Runs `f` like [`run_spmd_with_faults`] with trace recording attached:
/// every rank stamps events with its virtual clock and the merged
/// [`Trace`] is returned alongside the result.
///
/// The trace is a pure function of `(config, faults, f)` — byte-identical
/// across host thread counts. That holds even when the run fails
/// (`Err(RankFailed)`): a rank unwinds either at its own deterministic
/// node-loss clock or when a message it waits on provably cannot arrive,
/// both virtual-time-determined conditions. A failed run's per-rank spans
/// still describe work the caller will roll back, which is why the
/// recovery layer keeps only campaign-level events from failed attempts.
pub fn run_spmd_traced<T, F>(
    config: SpmdConfig,
    faults: FaultPlan,
    spec: TraceSpec,
    f: F,
) -> (Result<Vec<RankResult<T>>, RankFailed>, Trace)
where
    T: Send,
    F: Fn(&mut SimComm) -> T + Send + Sync,
{
    let sink = TraceSink::new(spec);
    let result = run_spmd_inner(config, faults, Some(sink.clone()), f);
    (result, sink.finish())
}

fn run_spmd_inner<T, F>(
    config: SpmdConfig,
    faults: FaultPlan,
    trace: Option<Arc<TraceSink>>,
    f: F,
) -> Result<Vec<RankResult<T>>, RankFailed>
where
    T: Send,
    F: Fn(&mut SimComm) -> T + Send + Sync,
{
    assert!(
        config.size <= MAX_REAL_RANKS,
        "{} ranks exceed the real-thread engine limit ({MAX_REAL_RANKS}); use hetero_simmpi::modeled",
        config.size
    );
    silence_fault_unwinds();
    let shared = SharedComm::new(
        config.size,
        config.topo,
        config.net,
        config.compute,
        config.seed,
        faults,
        trace,
    );

    let mut slots: Vec<Option<RankOutcome<T>>> = (0..config.size).map(|_| None).collect();

    std::thread::scope(|scope| {
        let shared = &shared;
        let f = &f;
        let handles: Vec<_> = (0..config.size)
            .map(|rank| {
                scope.spawn(move || {
                    let mut comm = SimComm::new(rank, shared.clone());
                    let out = std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut comm)));
                    let outcome = match out {
                        Ok(value) => RankOutcome::Ok(RankResult {
                            rank,
                            value,
                            clock: comm.clock(),
                            stats: *comm.stats(),
                        }),
                        Err(payload) => {
                            if let Some(fp) = payload.downcast_ref::<FaultPanic>() {
                                // Injected node loss; peers blocked on this
                                // rank's messages unwind via the terminated
                                // flag below.
                                RankOutcome::Fault(fp.0)
                            } else {
                                let msg = payload
                                    .downcast_ref::<&str>()
                                    .map(|s| s.to_string())
                                    .or_else(|| payload.downcast_ref::<String>().cloned())
                                    .unwrap_or_else(|| "<non-string panic>".into());
                                if msg.starts_with("job poisoned:") {
                                    // Collateral unwind; the root cause is
                                    // reported by whichever rank died first.
                                    RankOutcome::Poisoned
                                } else {
                                    RankOutcome::Panic(msg)
                                }
                            }
                        }
                    };
                    // Whatever the exit reason, tell blocked receivers this
                    // rank will send nothing more. Failure then cascades
                    // only along real wait-for dependencies, keeping every
                    // survivor's unwind point virtual-time-deterministic.
                    shared.mark_terminated(rank);
                    outcome
                })
            })
            .collect();
        for (rank, h) in handles.into_iter().enumerate() {
            slots[rank] = Some(
                h.join()
                    .unwrap_or_else(|_| RankOutcome::Panic("rank thread crashed".into())),
            );
        }
    });

    let mut results = Vec::with_capacity(config.size);
    let mut first_fault: Option<RankFailed> = None;
    let mut first_panic: Option<(usize, String)> = None;
    let mut poisoned_without_cause = false;
    for (rank, slot) in slots.into_iter().enumerate() {
        match slot.expect("every rank produces a result") {
            RankOutcome::Ok(r) => results.push(r),
            RankOutcome::Fault(rf) => {
                // Earliest loss in virtual time wins; node id breaks ties so
                // the selection is a pure function of the plan.
                let earlier = first_fault
                    .map(|cur| (rf.at, rf.node) < (cur.at, cur.node))
                    .unwrap_or(true);
                if earlier {
                    first_fault = Some(rf);
                }
            }
            RankOutcome::Poisoned => poisoned_without_cause = true,
            RankOutcome::Panic(e) => {
                if first_panic.is_none() {
                    first_panic = Some((rank, e));
                }
            }
        }
    }
    if let Some((rank, e)) = first_panic {
        panic!("rank {rank} panicked: {e}");
    }
    if let Some(rf) = first_fault {
        return Err(rf);
    }
    assert!(
        !poisoned_without_cause,
        "job poisoned but no rank reported a root cause"
    );
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Payload;
    use crate::fault::SlowWindow;
    use crate::work::Work;

    fn cfg(size: usize) -> SpmdConfig {
        SpmdConfig {
            size,
            topo: ClusterTopology::uniform(size, 1),
            net: NetworkModel::ideal(),
            compute: ComputeModel::new(1e9, 1e9),
            seed: 0,
        }
    }

    #[test]
    fn results_are_ordered_by_rank() {
        let r = run_spmd(cfg(8), |comm| comm.rank() * 10);
        for (i, res) in r.iter().enumerate() {
            assert_eq!(res.rank, i);
            assert_eq!(res.value, i * 10);
        }
    }

    #[test]
    fn single_rank_job() {
        let r = run_spmd(cfg(1), |comm| comm.size());
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].value, 1);
        assert_eq!(r[0].clock, 0.0);
    }

    #[test]
    #[should_panic(expected = "rank 2 panicked")]
    fn rank_panic_propagates() {
        run_spmd(cfg(4), |comm| {
            if comm.rank() == 2 {
                panic!("boom at rank 2");
            }
        });
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn panic_unblocks_waiting_peers() {
        // Rank 0 waits for a message that will never come because rank 1
        // panics; the job must unwind, not deadlock.
        run_spmd(cfg(2), |comm| {
            if comm.rank() == 0 {
                let _ = comm.recv(1, 9);
            } else {
                panic!("sender died");
            }
        });
    }

    #[test]
    fn many_ranks_work() {
        let r = run_spmd(cfg(64), |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 0, Payload::Usize(vec![comm.rank()]));
            comm.recv_usize(prev, 0)[0]
        });
        for (i, res) in r.iter().enumerate() {
            assert_eq!(res.value, (i + 64 - 1) % 64);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds cluster capacity")]
    fn oversubscribed_topology_rejected() {
        let mut c = cfg(4);
        c.topo = ClusterTopology::uniform(1, 2);
        run_spmd(c, |_| ());
    }

    #[test]
    fn node_loss_surfaces_as_err_not_deadlock() {
        // Rank 1's node dies at t = 1 s; rank 0 blocks on a message rank 1
        // will never send. The job must unwind and report the loss.
        let plan = FaultPlan {
            node_down_at: vec![f64::INFINITY, 1.0],
            slow_windows: vec![],
        };
        let out = run_spmd_with_faults(cfg(2), plan, |comm| {
            if comm.rank() == 0 {
                let _ = comm.recv(1, 3);
            } else {
                comm.compute(Work::new(5e9, 0.0)); // 5 virtual seconds > 1
                comm.send(0, 3, Payload::Empty);
            }
        });
        let rf = out.unwrap_err();
        assert_eq!(rf.node, 1);
        assert_eq!(rf.at, 1.0);
    }

    #[test]
    fn earliest_fault_wins_deterministically() {
        // Two independent nodes die; the report must name the earlier one
        // no matter which OS thread unwinds first.
        let plan = FaultPlan {
            node_down_at: vec![f64::INFINITY, 2.0, 0.5, f64::INFINITY],
            slow_windows: vec![],
        };
        for _ in 0..8 {
            let out = run_spmd_with_faults(cfg(4), plan.clone(), |comm| {
                comm.compute(Work::new(10e9, 0.0)); // 10 virtual seconds
            });
            let rf = out.unwrap_err();
            assert_eq!((rf.node, rf.at), (2, 0.5));
        }
    }

    #[test]
    fn traced_run_records_deterministic_ordered_events() {
        let body = |comm: &mut SimComm| {
            comm.compute(Work::new(1e9, 0.0));
            let _ = comm.allreduce_scalar(crate::collectives::ReduceOp::Sum, 1.0);
            comm.barrier();
            comm.clock()
        };
        let run = || {
            let (res, trace) =
                run_spmd_traced(cfg(4), FaultPlan::none(), TraceSpec::messages(), body);
            (res.unwrap(), trace)
        };
        let (res_a, trace_a) = run();
        let (_res_b, trace_b) = run();
        assert!(!trace_a.is_empty());
        // Identical configs give bitwise-identical traces and exports.
        assert_eq!(trace_a, trace_b);
        assert_eq!(trace_a.jsonl(), trace_b.jsonl());
        // Events are in canonical (at, rank, seq) order.
        let mut sorted = trace_a.clone();
        sorted.sort();
        assert_eq!(trace_a, sorted);
        // Collectives and p2p traffic both made it in.
        use hetero_trace::EventKind;
        assert!(trace_a
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Collective { op: "barrier", .. })));
        assert!(trace_a
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::SendMsg { .. })));
        // Tracing never perturbs virtual time.
        let untraced = run_spmd(cfg(4), body);
        for (t, u) in res_a.iter().zip(&untraced) {
            assert_eq!(t.value, u.value);
        }
    }

    #[test]
    fn trivial_plan_changes_nothing() {
        let body = |comm: &mut SimComm| {
            comm.compute(Work::new(1e9, 0.0));
            comm.clock()
        };
        let base = run_spmd(cfg(2), body);
        let faulted = run_spmd_with_faults(cfg(2), FaultPlan::none(), body).unwrap();
        assert_eq!(base[0].value, faulted[0].value);
        assert_eq!(base[1].value, faulted[1].value);
    }

    #[test]
    fn degradation_window_slows_covered_messages_only() {
        let clock_of = |windows: Vec<SlowWindow>| {
            let plan = FaultPlan {
                node_down_at: vec![],
                slow_windows: windows,
            };
            let mut c = cfg(2);
            c.net = NetworkModel::gigabit_ethernet();
            let r = run_spmd_with_faults(c, plan, |comm| {
                if comm.rank() == 0 {
                    comm.send(1, 1, Payload::F64(vec![0.0; 100_000]));
                    0.0
                } else {
                    let _ = comm.recv_f64(0, 1);
                    comm.clock()
                }
            })
            .unwrap();
            r[1].value
        };
        let clean = clock_of(vec![]);
        let covered = clock_of(vec![SlowWindow {
            start: 0.0,
            end: 10.0,
            factor: 4.0,
        }]);
        let missed = clock_of(vec![SlowWindow {
            start: 100.0,
            end: 110.0,
            factor: 4.0,
        }]);
        assert!(covered > 2.0 * clean, "{covered} vs {clean}");
        assert_eq!(missed, clean);
    }
}
