//! Fault injection in virtual time: per-node failure schedules and the
//! error they surface as.
//!
//! A [`FaultPlan`] tells the engine *when* (in virtual seconds) each node of
//! the topology dies and when the fabric is transiently degraded. The plan
//! is data, not a process: event generators live in the `hetero-fault`
//! crate, which derives plans deterministically from an experiment seed.
//! Injection is therefore exactly as reproducible as network jitter — the
//! same plan yields the same failure, bitwise, regardless of host
//! scheduling.
//!
//! A rank observes its node's death the first time its virtual clock
//! reaches the scheduled time; it raises [`RankFailed`] (as a typed panic
//! the engine intercepts), peers blocked in `recv` on a terminated sender
//! unwind instead of deadlocking, and
//! [`crate::engine::run_spmd_with_faults`] returns the failure as an error.

/// A transient network-degradation window in virtual time: messages whose
/// transfer overlaps the window are slowed by `factor`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowWindow {
    /// Window start, virtual seconds.
    pub start: f64,
    /// Window end, virtual seconds.
    pub end: f64,
    /// Multiplicative slowdown on latency and drain time (>= 1).
    pub factor: f64,
}

impl SlowWindow {
    /// Whether the window covers virtual time `t`.
    #[inline]
    pub fn covers(&self, t: f64) -> bool {
        t >= self.start && t < self.end
    }
}

/// Per-node failure schedule injected into one SPMD job.
///
/// Times are virtual seconds from job start. A node index beyond
/// `node_down_at.len()` never fails, so `FaultPlan::default()` is the
/// fault-free plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Virtual time at which each topology node is lost
    /// (`f64::INFINITY` = survives), indexed by node id.
    pub node_down_at: Vec<f64>,
    /// Transient degradation windows (fabric-wide).
    pub slow_windows: Vec<SlowWindow>,
}

impl FaultPlan {
    /// The fault-free plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan can affect a run at all.
    pub fn is_trivial(&self) -> bool {
        self.node_down_at.iter().all(|t| !t.is_finite()) && self.slow_windows.is_empty()
    }

    /// When `node` is scheduled to die (`INFINITY` if never).
    #[inline]
    pub fn down_time(&self, node: usize) -> f64 {
        self.node_down_at
            .get(node)
            .copied()
            .unwrap_or(f64::INFINITY)
    }

    /// The earliest scheduled node loss among the first `nodes_in_use`
    /// nodes, if any is finite.
    pub fn earliest_down(&self, nodes_in_use: usize) -> Option<(usize, f64)> {
        self.node_down_at
            .iter()
            .take(nodes_in_use)
            .copied()
            .enumerate()
            .filter(|(_, t)| t.is_finite())
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
    }

    /// The degradation factor in force at virtual time `t` (1.0 outside
    /// every window; overlapping windows compound by the worst factor).
    #[inline]
    pub fn slow_factor(&self, t: f64) -> f64 {
        let mut f = 1.0f64;
        for w in &self.slow_windows {
            if w.covers(t) {
                f = f.max(w.factor);
            }
        }
        f
    }
}

/// A node loss observed by the engine: the failure a fault-injected run
/// surfaces instead of deadlocking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankFailed {
    /// Topology node that died.
    pub node: usize,
    /// Scheduled virtual time of the loss, seconds.
    pub at: f64,
}

impl std::fmt::Display for RankFailed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node {} lost at virtual t = {:.6} s", self.node, self.at)
    }
}

/// The typed panic payload a rank raises when its node dies; intercepted by
/// the engine and turned into an `Err(RankFailed)`.
pub(crate) struct FaultPanic(pub(crate) RankFailed);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_trivial() {
        let p = FaultPlan::none();
        assert!(p.is_trivial());
        assert_eq!(p.down_time(0), f64::INFINITY);
        assert_eq!(p.down_time(99), f64::INFINITY);
        assert!(p.earliest_down(8).is_none());
        assert_eq!(p.slow_factor(1.0), 1.0);
    }

    #[test]
    fn earliest_down_prefers_time_then_node() {
        let p = FaultPlan {
            node_down_at: vec![f64::INFINITY, 5.0, 3.0, 3.0],
            slow_windows: vec![],
        };
        assert_eq!(p.earliest_down(4), Some((2, 3.0)));
        // Only the nodes actually in use count.
        assert_eq!(p.earliest_down(2), Some((1, 5.0)));
        assert!(p.earliest_down(1).is_none());
    }

    #[test]
    fn slow_factor_picks_the_worst_overlap() {
        let p = FaultPlan {
            node_down_at: vec![],
            slow_windows: vec![
                SlowWindow {
                    start: 1.0,
                    end: 4.0,
                    factor: 2.0,
                },
                SlowWindow {
                    start: 3.0,
                    end: 6.0,
                    factor: 5.0,
                },
            ],
        };
        assert_eq!(p.slow_factor(0.5), 1.0);
        assert_eq!(p.slow_factor(1.5), 2.0);
        assert_eq!(p.slow_factor(3.5), 5.0);
        assert_eq!(p.slow_factor(6.0), 1.0);
    }
}
