//! # hetero-simmpi
//!
//! A virtual-time SPMD message-passing runtime — the substitute for "MPI on
//! hardware we do not have" in the `hetero-hpc` reproduction.
//!
//! The paper benchmarks identical MPI applications on four platforms whose
//! *secondary* characteristics differ: interconnect (1 GbE, 10 GbE,
//! InfiniBand 4X DDR), cores per node (4/12/16), CPU generation, and cloud
//! virtualization artifacts. This crate reproduces that setting in
//! simulation:
//!
//! * Each MPI rank runs as a cooperatively scheduled stackful coroutine
//!   executing the *actual* application code on real data
//!   ([`engine::run_spmd`]); an M:N scheduler multiplexes up to
//!   [`engine::MAX_REAL_RANKS`] ranks onto a fixed worker pool. The legacy
//!   one-OS-thread-per-rank engine remains available for A/B pinning
//!   ([`engine::EngineKind::Threads`]).
//! * Each rank carries a **virtual clock** (seconds of simulated platform
//!   time). Computation advances it through a roofline model
//!   ([`work::ComputeModel`]); messages advance it through a latency /
//!   bandwidth / NIC-sharing / fabric-contention / jitter model
//!   ([`network::NetworkModel`]).
//! * Collectives ([`collectives`]) are built from modeled point-to-point
//!   messages (binomial trees, dissemination barrier), so their cost emerges
//!   from the same network parameters the paper varies.
//!
//! Simulated time is **deterministic**: it depends only on the program's
//! communication structure, the platform parameters, and an experiment seed
//! (jitter is hash-derived per message) — never on host scheduling or
//! wall-clock. Running the same experiment twice gives bitwise-identical
//! timings, which the test suite exploits.
//!
//! For configurations too large to execute numerically (the paper's
//! 1000-rank runs) the same cost formulas are evaluated analytically; see
//! [`modeled`].
//!
//! Runs can optionally record a deterministic, virtual-clock-stamped trace
//! (phases, collectives, point-to-point traffic) through
//! [`engine::run_spmd_traced`]; see the `hetero-trace` crate for the event
//! model and exporters.

// `deny` rather than `forbid`: the coroutine context switch in `sched`
// needs a scoped `unsafe` island; everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod collectives;
pub mod comm;
pub mod engine;
pub mod fault;
pub mod modeled;
pub mod network;
pub mod rng;
pub(crate) mod sched;
pub mod stats;
pub mod topology;
pub mod work;

pub use comm::{Payload, RecvRequest, SendRequest, SimComm};
pub use engine::{
    run_spmd, run_spmd_opts, run_spmd_traced, run_spmd_with_faults, EngineKind, EngineOpts,
    RankResult, SpmdConfig, COOPERATIVE_SUPPORTED, DEFAULT_TASK_STACK_BYTES, MAX_REAL_RANKS,
    MAX_THREAD_RANKS,
};
pub use fault::{FaultPlan, RankFailed, SlowWindow};
pub use hetero_trace::{Trace, TraceDetail, TraceSpec};
pub use network::{MsgContext, NetworkModel};
pub use stats::CommStats;
pub use topology::ClusterTopology;
pub use work::{ComputeModel, Work};
