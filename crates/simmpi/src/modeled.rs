//! The analytic ("modeled") execution engine.
//!
//! For configurations too large to execute numerically on one host — the
//! paper's 1000-rank, 200^3-element runs — a [`VirtualRank`] replays the
//! *cost* of the communication/computation sequence a real rank would
//! execute, using the same [`NetworkModel`]/[`ComputeModel`] and the same
//! per-message overhead constants as the threaded engine. The integration
//! test `model_validation` checks the two engines agree at small scale.
//!
//! The virtual rank represents the *critical* rank of a bulk-synchronous
//! application: peers are assumed to reach each phase at the same virtual
//! time (exact under perfect weak scaling, slightly pessimistic otherwise).

use crate::comm::{HEADER_BYTES, RECV_OVERHEAD, SEND_OVERHEAD};
use crate::network::{MsgContext, NetworkModel};
use crate::work::{ComputeModel, Work};

/// Smallest `d` with `2^d >= n`.
#[inline]
pub fn ceil_log2(n: usize) -> u32 {
    assert!(n > 0);
    (n as u64).next_power_of_two().trailing_zeros()
}

/// One modeled halo-exchange message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VirtualMsg {
    /// Peer rank id (keys the jitter hash only).
    pub peer: usize,
    /// Payload bytes.
    pub bytes: f64,
    /// Peer lives on the same node.
    pub same_node: bool,
    /// Peer's node shares this rank's placement group.
    pub same_group: bool,
}

/// The environment a virtual rank runs in.
#[derive(Debug, Clone)]
pub struct VirtualEnv {
    /// Interconnect model.
    pub net: NetworkModel,
    /// Per-core compute model.
    pub compute: ComputeModel,
    /// Ranks sharing this rank's NIC.
    pub nic_sharers: usize,
    /// Nodes in the job.
    pub nodes_active: usize,
    /// Total ranks in the job.
    pub size: usize,
    /// This rank's id (keys the jitter hash).
    pub rank: usize,
    /// Experiment seed.
    pub seed: u64,
}

/// Cost-only replay of one rank's execution.
#[derive(Debug, Clone)]
pub struct VirtualRank {
    env: VirtualEnv,
    clock: f64,
    seq: u64,
}

impl VirtualRank {
    /// Creates a virtual rank at clock zero.
    pub fn new(env: VirtualEnv) -> Self {
        assert!(env.size > 0 && env.rank < env.size);
        VirtualRank {
            env,
            clock: 0.0,
            seq: 0,
        }
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Charges computation, as [`crate::SimComm::compute`] does.
    pub fn compute(&mut self, work: Work) {
        self.clock += self.env.compute.time(work);
    }

    fn transfer(
        &mut self,
        bytes: f64,
        same_node: bool,
        same_group: bool,
        peer: usize,
    ) -> (f64, f64) {
        let ctx = MsgContext {
            bytes: bytes + HEADER_BYTES,
            same_node,
            same_group,
            nic_sharers: self.env.nic_sharers,
            nodes_active: self.env.nodes_active,
            jitter_key: (self.env.seed, peer as u64, self.env.rank as u64, self.seq),
        };
        self.seq += 1;
        self.env.net.transfer_cost(ctx)
    }

    /// Charges a neighbour halo exchange: post all sends, then drain all
    /// receives (the overlap pattern the FEM ghost update uses). Peers are
    /// assumed to start the exchange at the same virtual time.
    pub fn halo_exchange(&mut self, msgs: &[VirtualMsg]) {
        if msgs.is_empty() {
            return;
        }
        // Sends: fixed overhead + packing, serialized on the CPU.
        for m in msgs {
            self.clock += SEND_OVERHEAD + (m.bytes + HEADER_BYTES) / self.env.net.intra_bw;
        }
        let depart = self.clock;
        // Receives, mirroring `SimComm::recv`: each message becomes
        // available after its latency (peers posted at ~the same time, so
        // latencies overlap), then drains serially through this rank's NIC.
        for m in msgs {
            let (latency, drain) = self.transfer(m.bytes, m.same_node, m.same_group, m.peer);
            self.clock = self.clock.max(depart + latency) + drain + RECV_OVERHEAD;
        }
    }

    /// Charges a halo exchange whose transfers overlap with `interior`
    /// compute, mirroring the threaded engine's post/compute/`wait_all`
    /// sequence (`spmv_overlapped`): sends are posted up front, each
    /// message's full transfer (latency + drain) then progresses while the
    /// interior work runs, and the wait point only stalls for whatever the
    /// compute did not cover.
    pub fn halo_exchange_overlapped(&mut self, msgs: &[VirtualMsg], interior: Work) {
        if msgs.is_empty() {
            self.compute(interior);
            return;
        }
        for m in msgs {
            self.clock += SEND_OVERHEAD + (m.bytes + HEADER_BYTES) / self.env.net.intra_bw;
        }
        let depart = self.clock;
        let mut avails = Vec::with_capacity(msgs.len());
        for m in msgs {
            let (latency, drain) = self.transfer(m.bytes, m.same_node, m.same_group, m.peer);
            avails.push(depart + latency + drain);
        }
        self.compute(interior);
        for a in avails {
            self.clock = self.clock.max(a) + RECV_OVERHEAD;
        }
    }

    /// Charges a binomial-tree reduce + broadcast all-reduce of `n` doubles,
    /// mirroring [`crate::SimComm::allreduce`]. The modeled rank pays the
    /// worst-case tree depth on both phases. Tree edges at level `k`
    /// connect ranks `2^k` apart; under block placement those stay on one
    /// node while `2^k` is below the ranks-per-node count, which is why
    /// small jobs on many-core nodes see cheap collectives.
    pub fn allreduce(&mut self, n: usize) {
        let depth = ceil_log2(self.env.size);
        if depth == 0 {
            return;
        }
        let bytes = 8.0 * n as f64;
        for phase_level in 0..2 * depth {
            let level = phase_level % depth;
            let same_node = (1usize << level) < self.env.nic_sharers;
            let (lat, drain) = self.transfer(bytes, same_node, true, self.env.rank ^ 1);
            self.clock += SEND_OVERHEAD
                + (bytes + HEADER_BYTES) / self.env.net.intra_bw
                + lat
                + drain
                + RECV_OVERHEAD;
        }
        // Combine flops on the reduce path.
        self.compute(Work::new(
            depth as f64 * n as f64,
            depth as f64 * 16.0 * n as f64,
        ));
    }

    /// Charges a dissemination barrier (`ceil(log2 p)` rounds of empty
    /// messages), with the same per-level node locality as [`Self::allreduce`].
    pub fn barrier(&mut self) {
        let rounds = ceil_log2(self.env.size);
        for level in 0..rounds {
            let same_node = (1usize << level) < self.env.nic_sharers;
            let (lat, drain) = self.transfer(0.0, same_node, true, self.env.rank ^ 1);
            self.clock +=
                SEND_OVERHEAD + HEADER_BYTES / self.env.net.intra_bw + lat + drain + RECV_OVERHEAD;
        }
    }

    /// Advances the clock without attributing work.
    pub fn advance(&mut self, seconds: f64) {
        assert!(seconds >= 0.0);
        self.clock += seconds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ClusterTopology;

    fn env(size: usize, net: NetworkModel) -> VirtualEnv {
        let topo = ClusterTopology::uniform(size.div_ceil(4).max(1), 4);
        VirtualEnv {
            net,
            compute: ComputeModel::new(1e9, 4e9),
            nic_sharers: topo.ranks_on_node(0, size),
            nodes_active: topo.nodes_for_ranks(size),
            size,
            rank: 0,
            seed: 7,
        }
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(1000), 10);
    }

    #[test]
    fn compute_matches_roofline() {
        let mut v = VirtualRank::new(env(1, NetworkModel::ideal()));
        v.compute(Work::new(3e9, 0.0));
        assert!((v.clock() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn halo_exchange_costs_at_least_one_transfer() {
        let mut v = VirtualRank::new(env(8, NetworkModel::gigabit_ethernet()));
        let msgs = vec![VirtualMsg {
            peer: 1,
            bytes: 1e6,
            same_node: false,
            same_group: true,
        }];
        v.halo_exchange(&msgs);
        // >= latency + bytes / (bw / sharers).
        assert!(
            v.clock() > 45e-6 + 1e6 / (117e6 / 4.0) * 0.9,
            "clock = {}",
            v.clock()
        );
    }

    #[test]
    fn more_neighbors_cost_more() {
        let one = {
            let mut v = VirtualRank::new(env(27, NetworkModel::gigabit_ethernet()));
            v.halo_exchange(&[VirtualMsg {
                peer: 1,
                bytes: 1e5,
                same_node: false,
                same_group: true,
            }]);
            v.clock()
        };
        let many = {
            let mut v = VirtualRank::new(env(27, NetworkModel::gigabit_ethernet()));
            let msgs: Vec<_> = (0..26)
                .map(|p| VirtualMsg {
                    peer: p,
                    bytes: 1e5,
                    same_node: false,
                    same_group: true,
                })
                .collect();
            v.halo_exchange(&msgs);
            v.clock()
        };
        assert!(many > one);
    }

    #[test]
    fn allreduce_scales_logarithmically() {
        let cost = |p: usize| {
            let mut e = env(p, NetworkModel::infiniband_ddr());
            e.nic_sharers = 1;
            let mut v = VirtualRank::new(e);
            v.allreduce(1);
            v.clock()
        };
        let t8 = cost(8);
        let t64 = cost(64);
        let t512 = cost(512);
        // Depth grows 3 -> 6 -> 9: roughly linear in log p.
        assert!(t64 / t8 > 1.5 && t64 / t8 < 2.5, "ratio {}", t64 / t8);
        assert!(t512 / t64 > 1.2 && t512 / t64 < 1.8, "ratio {}", t512 / t64);
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let mut v = VirtualRank::new(env(1, NetworkModel::gigabit_ethernet()));
        v.allreduce(10);
        v.barrier();
        assert_eq!(v.clock(), 0.0);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut v = VirtualRank::new(env(64, NetworkModel::ten_gig_ethernet_ec2()));
            for _ in 0..10 {
                v.halo_exchange(&[VirtualMsg {
                    peer: 3,
                    bytes: 5e4,
                    same_node: false,
                    same_group: true,
                }]);
                v.allreduce(1);
            }
            v.clock()
        };
        assert_eq!(run(), run());
    }
}
