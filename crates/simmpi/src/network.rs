//! The interconnect cost model.
//!
//! A message between ranks is charged
//!
//! * **intra-node**: `latency_intra + bytes / intra_bw` (a memory copy);
//! * **inter-node**: `latency * L + bytes / B_eff`, where
//!   `B_eff = node_bw / nic_sharers / fabric_contention(nodes) * G`,
//!   `L` and `G` are placement-group penalties when the endpoints' nodes sit
//!   in different groups, and the whole transfer is scaled by a
//!   deterministic per-message jitter factor (virtualization noise).
//!
//! `nic_sharers` captures the paper's own explanation of its results: all
//! ranks on a node share one network adapter, so a 4-core 1 GbE node gives
//! each rank ~31 MB/s while a 16-core 10 GbE cc2.8xlarge gives ~78 MB/s —
//! and the EC2 assembly "exploits notably fewer hosts hence the smaller
//! volume of data is exchanged".

use crate::rng::jitter_factor;
use serde::{Deserialize, Serialize};

/// Context for pricing one message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsgContext {
    /// Modeled payload size in bytes.
    pub bytes: f64,
    /// Endpoints share a node.
    pub same_node: bool,
    /// Endpoints' nodes share a placement group.
    pub same_group: bool,
    /// Ranks sharing the sending node's NIC (>= 1).
    pub nic_sharers: usize,
    /// Nodes participating in the job (drives fabric contention).
    pub nodes_active: usize,
    /// Jitter key: (seed, src, dst, per-pair sequence number).
    pub jitter_key: (u64, u64, u64, u64),
}

/// Parameters of one interconnect fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Human-readable fabric name ("1GbE", "10GbE", "IB 4X DDR").
    pub name: String,
    /// One-way inter-node latency in seconds (includes software overhead).
    pub latency: f64,
    /// Intra-node (shared-memory transport) latency in seconds.
    pub latency_intra: f64,
    /// Per-node NIC bandwidth, bytes/second (shared by all ranks on a node).
    pub node_bw: f64,
    /// Intra-node copy bandwidth, bytes/second.
    pub intra_bw: f64,
    /// Nodes served without contention by the switching fabric. Beyond this,
    /// effective bandwidth is divided by `(nodes / radix) ^ oversubscription`.
    pub switch_radix: usize,
    /// Fabric oversubscription exponent (0 = full bisection at any scale).
    pub oversubscription: f64,
    /// Latency multiplier for messages crossing placement groups.
    pub cross_group_lat_mult: f64,
    /// Bandwidth multiplier (<= 1) for messages crossing placement groups.
    pub cross_group_bw_mult: f64,
    /// Virtualization jitter amplitude (0 = deterministic fabric).
    pub jitter_sigma: f64,
}

impl NetworkModel {
    /// Fabric contention factor (>= 1) for a job spanning `nodes` nodes.
    #[inline]
    pub fn fabric_contention(&self, nodes: usize) -> f64 {
        if nodes <= self.switch_radix || self.oversubscription == 0.0 {
            1.0
        } else {
            (nodes as f64 / self.switch_radix as f64).powf(self.oversubscription)
        }
    }

    /// Prices one message as `(arrival latency, drain time)`.
    ///
    /// * **arrival latency** — time until the first byte is available at
    ///   the receiver's adapter; concurrent messages overlap on this part;
    /// * **drain time** — time to pull the payload through the receiver's
    ///   NIC share; a rank's inbound messages serialize on this part, which
    ///   is what makes the bulk assembly exchange so expensive on slow
    ///   fabrics.
    ///
    /// Fabric contention multiplies *both* parts for inter-node traffic:
    /// congested Ethernet fabrics suffer latency inflation (incast queueing,
    /// retransmits) at least as much as throughput loss — the mechanism
    /// behind the steep large-scale degradation in the paper's Figures 4/5.
    pub fn transfer_cost(&self, ctx: MsgContext) -> (f64, f64) {
        if ctx.same_node {
            return (self.latency_intra, ctx.bytes / self.intra_bw);
        }
        let lat = if ctx.same_group {
            self.latency
        } else {
            self.latency * self.cross_group_lat_mult
        };
        let mut bw = self.node_bw / ctx.nic_sharers.max(1) as f64;
        if !ctx.same_group {
            bw *= self.cross_group_bw_mult;
        }
        let (seed, src, dst, seq) = ctx.jitter_key;
        let scale = self.fabric_contention(ctx.nodes_active)
            * jitter_factor(seed, src, dst, seq, self.jitter_sigma);
        (lat * scale, ctx.bytes / bw * scale)
    }

    /// Total time of one message transferred in isolation (latency +
    /// drain).
    pub fn transfer_time(&self, ctx: MsgContext) -> f64 {
        let (lat, drain) = self.transfer_cost(ctx);
        lat + drain
    }

    /// Gigabit Ethernet as found on `puma`/`ellipse` (2006-era department
    /// clusters): ~45 us MPI latency, ~117 MB/s per node, modestly
    /// oversubscribed edge switches.
    pub fn gigabit_ethernet() -> Self {
        NetworkModel {
            name: "1GbE".into(),
            latency: 45e-6,
            latency_intra: 1.2e-6,
            node_bw: 117e6,
            intra_bw: 2.5e9,
            switch_radix: 16,
            oversubscription: 1.0,
            cross_group_lat_mult: 1.0,
            cross_group_bw_mult: 1.0,
            jitter_sigma: 0.04,
        }
    }

    /// Virtualized 10 GbE as on EC2 cc2.8xlarge (2011/12): high software
    /// latency through the hypervisor, ~1.1 GB/s per instance, placement
    /// groups give locality, and substantial multi-tenant jitter.
    pub fn ten_gig_ethernet_ec2() -> Self {
        NetworkModel {
            name: "10GbE".into(),
            latency: 150e-6,
            latency_intra: 1.0e-6,
            node_bw: 1.1e9,
            intra_bw: 4.0e9,
            switch_radix: 4,
            oversubscription: 1.7,
            cross_group_lat_mult: 1.25,
            cross_group_bw_mult: 0.9,
            jitter_sigma: 0.35,
        }
    }

    /// InfiniBand 4X DDR (20 Gb/s signaled, ~1.9 GB/s data) on a fat-tree as
    /// on `lagrange`: microsecond latency, effectively full bisection.
    pub fn infiniband_ddr() -> Self {
        NetworkModel {
            name: "IB 4X DDR".into(),
            latency: 3.2e-6,
            latency_intra: 0.8e-6,
            node_bw: 1.9e9,
            intra_bw: 5.0e9,
            switch_radix: 512,
            oversubscription: 0.0,
            cross_group_lat_mult: 1.0,
            cross_group_bw_mult: 1.0,
            jitter_sigma: 0.01,
        }
    }

    /// An idealized zero-latency infinite-bandwidth fabric, useful for
    /// isolating compute time in tests and ablations.
    pub fn ideal() -> Self {
        NetworkModel {
            name: "ideal".into(),
            latency: 0.0,
            latency_intra: 0.0,
            node_bw: f64::INFINITY,
            intra_bw: f64::INFINITY,
            switch_radix: usize::MAX,
            oversubscription: 0.0,
            cross_group_lat_mult: 1.0,
            cross_group_bw_mult: 1.0,
            jitter_sigma: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(bytes: f64) -> MsgContext {
        MsgContext {
            bytes,
            same_node: false,
            same_group: true,
            nic_sharers: 1,
            nodes_active: 2,
            jitter_key: (0, 0, 1, 0),
        }
    }

    #[test]
    fn ideal_fabric_is_free() {
        let m = NetworkModel::ideal();
        assert_eq!(m.transfer_time(ctx(1e9)), 0.0);
    }

    #[test]
    fn latency_dominates_small_messages() {
        let m = NetworkModel::gigabit_ethernet();
        let t = m.transfer_time(MsgContext {
            jitter_key: (0, 0, 1, 0),
            ..ctx(8.0)
        });
        // An 8-byte message costs roughly the latency (jitter < 5%).
        assert!((t / m.latency - 1.0).abs() < 0.1, "t = {t}");
    }

    #[test]
    fn bandwidth_dominates_large_messages() {
        let m = NetworkModel::gigabit_ethernet();
        let t = m.transfer_time(ctx(117e6));
        assert!(t > 0.9 && t < 1.2, "t = {t}");
    }

    #[test]
    fn nic_sharing_divides_bandwidth() {
        let m = NetworkModel::infiniband_ddr(); // no jitter to speak of
        let alone = m.transfer_time(ctx(1e8));
        let shared = m.transfer_time(MsgContext {
            nic_sharers: 4,
            ..ctx(1e8)
        });
        assert!(
            shared / alone > 3.5 && shared / alone < 4.2,
            "ratio {}",
            shared / alone
        );
    }

    #[test]
    fn intra_node_is_fast() {
        let m = NetworkModel::gigabit_ethernet();
        let inter = m.transfer_time(ctx(1e6));
        let intra = m.transfer_time(MsgContext {
            same_node: true,
            ..ctx(1e6)
        });
        assert!(intra < inter / 10.0);
    }

    #[test]
    fn fabric_contention_kicks_in_beyond_radix() {
        let m = NetworkModel::gigabit_ethernet();
        assert_eq!(m.fabric_contention(16), 1.0);
        assert!(m.fabric_contention(96) > 2.0);
        let ib = NetworkModel::infiniband_ddr();
        assert_eq!(ib.fabric_contention(10_000), 1.0);
    }

    #[test]
    fn cross_group_penalty() {
        let mut m = NetworkModel::ten_gig_ethernet_ec2();
        m.jitter_sigma = 0.0; // isolate the group effect
        let within = m.transfer_time(ctx(1e6));
        let across = m.transfer_time(MsgContext {
            same_group: false,
            ..ctx(1e6)
        });
        assert!(across > within, "{across} vs {within}");
    }

    #[test]
    fn jitter_changes_with_sequence_number() {
        let m = NetworkModel::ten_gig_ethernet_ec2();
        let a = m.transfer_time(MsgContext {
            jitter_key: (7, 0, 1, 0),
            ..ctx(1e6)
        });
        let b = m.transfer_time(MsgContext {
            jitter_key: (7, 0, 1, 1),
            ..ctx(1e6)
        });
        assert_ne!(a, b);
        // But the same key is reproducible.
        let a2 = m.transfer_time(MsgContext {
            jitter_key: (7, 0, 1, 0),
            ..ctx(1e6)
        });
        assert_eq!(a, a2);
    }

    #[test]
    fn ethernet_slower_than_infiniband() {
        let eth = NetworkModel::gigabit_ethernet();
        let ib = NetworkModel::infiniband_ddr();
        for bytes in [8.0, 1e4, 1e6, 1e8] {
            assert!(
                eth.transfer_time(ctx(bytes)) > ib.transfer_time(ctx(bytes)),
                "bytes = {bytes}"
            );
        }
    }
}
