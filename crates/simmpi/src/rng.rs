//! Deterministic hash-based randomness for per-message jitter.
//!
//! Jitter must not depend on host thread scheduling, so it is derived by
//! hashing `(experiment seed, src, dst, per-pair sequence number)` rather
//! than drawn from a shared stream.

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Hashes a tuple of message coordinates into a uniform `u64`.
#[inline]
pub fn hash_msg(seed: u64, src: u64, dst: u64, seq: u64) -> u64 {
    let mut h = splitmix64(seed ^ 0xA076_1D64_78BD_642F);
    h = splitmix64(h ^ src.wrapping_mul(0xE703_7ED1_A0B4_28DB));
    h = splitmix64(h ^ dst.wrapping_mul(0x8EBC_6AF0_9C88_C6E3));
    splitmix64(h ^ seq)
}

/// Maps a `u64` to a uniform sample in `[0, 1)`.
#[inline]
pub fn to_unit(h: u64) -> f64 {
    // 53 high bits -> double in [0, 1).
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A deterministic multiplicative jitter factor with mean 1.
///
/// Uses a two-point mixture approximating a heavy-tailed delay: with
/// probability `p_spike` the message is slowed by `spike` (straggler VM,
/// hypervisor interference), otherwise it gets a mild uniform perturbation.
/// `sigma = 0` yields exactly 1.0. Mean is kept at ~1 so aggregate bandwidth
/// is unchanged; only variance grows with `sigma`.
#[inline]
pub fn jitter_factor(seed: u64, src: u64, dst: u64, seq: u64, sigma: f64) -> f64 {
    if sigma == 0.0 {
        return 1.0;
    }
    let h = hash_msg(seed, src, dst, seq);
    let u = to_unit(h);
    let p_spike = 0.02;
    let spike = 1.0 + 8.0 * sigma;
    if u < p_spike {
        spike
    } else {
        // Uniform in [1 - sigma/2, 1 + sigma/2], shifted slightly down so the
        // overall mean (including spikes) stays close to 1.
        let v = to_unit(splitmix64(h));
        let base = 1.0 + sigma * (v - 0.5);
        (base - p_spike * (spike - 1.0)).max(0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
        // Consecutive seeds should differ in many bits.
        let d = (splitmix64(1) ^ splitmix64(2)).count_ones();
        assert!(d > 16, "poor mixing: {d} bits");
    }

    #[test]
    fn hash_msg_varies_with_each_coordinate() {
        let base = hash_msg(1, 2, 3, 4);
        assert_ne!(base, hash_msg(9, 2, 3, 4));
        assert_ne!(base, hash_msg(1, 9, 3, 4));
        assert_ne!(base, hash_msg(1, 2, 9, 4));
        assert_ne!(base, hash_msg(1, 2, 3, 9));
    }

    #[test]
    fn to_unit_in_range() {
        for i in 0..1000u64 {
            let u = to_unit(splitmix64(i));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn zero_sigma_means_no_jitter() {
        for seq in 0..100 {
            assert_eq!(jitter_factor(7, 0, 1, seq, 0.0), 1.0);
        }
    }

    #[test]
    fn jitter_mean_is_near_one() {
        let sigma = 0.3;
        let n = 20_000u64;
        let mean: f64 = (0..n)
            .map(|s| jitter_factor(11, 3, 5, s, sigma))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn jitter_is_positive_and_bounded() {
        for s in 0..5000u64 {
            let j = jitter_factor(3, 1, 2, s, 0.5);
            assert!(j > 0.0 && j < 10.0, "j = {j}");
        }
    }

    #[test]
    fn jitter_has_spikes() {
        let sigma = 0.4;
        let spikes = (0..10_000u64)
            .filter(|&s| jitter_factor(5, 0, 1, s, sigma) > 2.0)
            .count();
        // ~2% spike probability.
        assert!(spikes > 100 && spikes < 400, "spikes = {spikes}");
    }
}
