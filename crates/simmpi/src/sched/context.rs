//! Stackful-coroutine primitives: heap-allocated task stacks and the
//! register-level context switch the M:N scheduler is built on.
//!
//! This is the only module in the crate that needs `unsafe`. The surface is
//! three tiny things:
//!
//! * [`Context`] — the callee-saved register file of a suspended execution
//!   (stack pointer included). A context is only ever *entered* by the
//!   matching [`ctx_swap`], which first saves the current execution into
//!   another `Context`, so control flow forms a strict hand-off chain.
//! * [`TaskStack`] — a 16-byte-aligned heap allocation used as a coroutine
//!   stack, with a canary pattern at the low end that [`TaskStack::canary_ok`]
//!   checks after every hand-off (a cheap heuristic for overflow, since heap
//!   stacks have no guard page).
//! * [`init_context`] — builds the initial `Context` of a not-yet-started
//!   task: the first swap into it "returns" into a tiny assembly trampoline
//!   that calls [`hetero_simmpi_task_entry`](super::hetero_simmpi_task_entry)
//!   with the task's control block.
//!
//! Only the System-V-flavoured targets the workspace actually runs on are
//! supported (`x86_64` and `aarch64` on non-Windows). The engine checks
//! [`super::super::engine::COOPERATIVE_SUPPORTED`] and falls back to the
//! thread-per-rank engine elsewhere, so nothing here is reached on other
//! targets.
//!
//! # Safety argument
//!
//! A context switch moves execution between stacks on the *same* OS thread;
//! the scheduler guarantees each task is resumed by exactly one worker at a
//! time (hand-offs synchronize through the scheduler mutex, which provides
//! the necessary happens-before edges when a task migrates between
//! workers). Panics never cross a switch: every coroutine body runs under
//! `catch_unwind` at the bottom of its own stack, and the trampoline frame
//! below it is never unwound through.

#![allow(unsafe_code)]

use std::alloc::{alloc, dealloc, Layout};

/// Number of saved registers in a [`Context`].
#[cfg(target_arch = "x86_64")]
const REG_COUNT: usize = 7; // rsp, rbx, rbp, r12..r15
/// Number of saved registers in a [`Context`].
#[cfg(target_arch = "aarch64")]
const REG_COUNT: usize = 21; // sp, x19..x30, d8..d15
/// Placeholder so the types compile on targets without a switch
/// implementation; the engine never selects the cooperative path there.
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
const REG_COUNT: usize = 1;

/// Register index holding the stack pointer.
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
const REG_SP: usize = 0;
/// Register index that carries the task-control-block pointer into the
/// entry trampoline (a callee-saved register the trampoline moves into the
/// first-argument register).
#[cfg(target_arch = "x86_64")]
const REG_ARG: usize = 3; // r12
#[cfg(target_arch = "aarch64")]
const REG_ARG: usize = 1; // x19
/// Register index the first swap "returns" through (the slot the trampoline
/// address is planted in). On x86_64 the return address lives on the stack
/// instead, so this is unused there.
#[cfg(target_arch = "aarch64")]
const REG_LR: usize = 12; // x30

/// The callee-saved register file of a suspended execution.
///
/// `repr(C)` because the assembly addresses fields by byte offset.
#[repr(C)]
#[derive(Debug)]
pub(crate) struct Context {
    regs: [usize; REG_COUNT],
}

impl Context {
    /// An empty context; a valid *save* target (its content is entirely
    /// overwritten by the first [`ctx_swap`] that saves into it) but not a
    /// valid *restore* source until it has been saved into or built by
    /// [`init_context`].
    pub(crate) fn new() -> Self {
        Context {
            regs: [0; REG_COUNT],
        }
    }
}

#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
unsafe extern "C" {
    /// Saves the current callee-saved register file into `save` and resumes
    /// the execution captured in `restore`. Returns when something later
    /// swaps back into `save`.
    ///
    /// # Safety
    /// `restore` must have been produced by a prior save or by
    /// [`init_context`]; both pointers must be valid and distinct; the
    /// stack captured in `restore` must be live and not in use by any other
    /// thread.
    unsafe fn hetero_simmpi_ctx_swap(save: *mut Context, restore: *const Context);

    /// The assembly entry trampoline (never called from Rust; its address
    /// is planted in fresh task contexts).
    fn hetero_simmpi_ctx_entry();
}

/// Saves the current execution into `save` and resumes `restore`.
///
/// # Safety
/// See the extern declaration of `hetero_simmpi_ctx_swap`: `restore` must
/// hold a suspended execution (prior save or [`init_context`]), both
/// pointers must be valid and distinct, and the target stack must be live
/// and unused by any other thread.
#[inline]
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
pub(crate) unsafe fn ctx_swap(save: *mut Context, restore: *const Context) {
    unsafe { hetero_simmpi_ctx_swap(save, restore) }
}

/// Stub for targets without a switch implementation; unreachable because
/// the engine never selects the cooperative path there.
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
pub(crate) unsafe fn ctx_swap(_save: *mut Context, _restore: *const Context) {
    unreachable!("cooperative engine is not supported on this target")
}

#[cfg(target_arch = "x86_64")]
std::arch::global_asm!(
    // Context layout: [rsp, rbx, rbp, r12, r13, r14, r15] at 8-byte stride.
    ".text",
    ".globl hetero_simmpi_ctx_swap",
    ".p2align 4",
    "hetero_simmpi_ctx_swap:",
    "mov [rdi + 0x00], rsp",
    "mov [rdi + 0x08], rbx",
    "mov [rdi + 0x10], rbp",
    "mov [rdi + 0x18], r12",
    "mov [rdi + 0x20], r13",
    "mov [rdi + 0x28], r14",
    "mov [rdi + 0x30], r15",
    "mov rsp, [rsi + 0x00]",
    "mov rbx, [rsi + 0x08]",
    "mov rbp, [rsi + 0x10]",
    "mov r12, [rsi + 0x18]",
    "mov r13, [rsi + 0x20]",
    "mov r14, [rsi + 0x28]",
    "mov r15, [rsi + 0x30]",
    "ret",
    // First entry into a fresh task: the initial context's r12 carries the
    // task control block; move it into the argument register, terminate the
    // frame-pointer chain, and call the Rust entry (which never returns).
    ".globl hetero_simmpi_ctx_entry",
    ".p2align 4",
    "hetero_simmpi_ctx_entry:",
    "mov rdi, r12",
    "xor ebp, ebp",
    "call hetero_simmpi_task_entry",
    "ud2",
);

#[cfg(target_arch = "aarch64")]
std::arch::global_asm!(
    // Context layout: [sp, x19..x30, d8..d15] at 8-byte stride.
    ".text",
    ".globl hetero_simmpi_ctx_swap",
    ".p2align 2",
    "hetero_simmpi_ctx_swap:",
    "mov x9, sp",
    "str x9,       [x0, #0x00]",
    "stp x19, x20, [x0, #0x08]",
    "stp x21, x22, [x0, #0x18]",
    "stp x23, x24, [x0, #0x28]",
    "stp x25, x26, [x0, #0x38]",
    "stp x27, x28, [x0, #0x48]",
    "stp x29, x30, [x0, #0x58]",
    "stp d8,  d9,  [x0, #0x68]",
    "stp d10, d11, [x0, #0x78]",
    "stp d12, d13, [x0, #0x88]",
    "stp d14, d15, [x0, #0x98]",
    "ldr x9,       [x1, #0x00]",
    "mov sp, x9",
    "ldp x19, x20, [x1, #0x08]",
    "ldp x21, x22, [x1, #0x18]",
    "ldp x23, x24, [x1, #0x28]",
    "ldp x25, x26, [x1, #0x38]",
    "ldp x27, x28, [x1, #0x48]",
    "ldp x29, x30, [x1, #0x58]",
    "ldp d8,  d9,  [x1, #0x68]",
    "ldp d10, d11, [x1, #0x78]",
    "ldp d12, d13, [x1, #0x88]",
    "ldp d14, d15, [x1, #0x98]",
    "ret",
    ".globl hetero_simmpi_ctx_entry",
    ".p2align 2",
    "hetero_simmpi_ctx_entry:",
    "mov x0, x19",
    "mov x29, xzr",
    "mov x30, xzr",
    "bl hetero_simmpi_task_entry",
    "brk #0",
);

/// Bytes of canary pattern written at the low (overflow) end of each stack.
const CANARY_BYTES: usize = 64;
/// The canary fill byte.
const CANARY_FILL: u8 = 0x5A;

/// A heap allocation used as a coroutine stack.
///
/// Allocated with 16-byte alignment (both supported ABIs require it) and a
/// size rounded up to 16. Large allocations are lazily committed by the OS,
/// so tens of thousands of mostly-idle stacks cost virtual address space,
/// not resident memory.
pub(crate) struct TaskStack {
    base: *mut u8,
    layout: Layout,
}

// The stack is only written through the coroutine that runs on it, and the
// scheduler serializes access; the owning container just needs to move
// between worker threads.
unsafe impl Send for TaskStack {}

impl TaskStack {
    /// Allocates a stack of at least `bytes` bytes and plants the canary.
    pub(crate) fn new(bytes: usize) -> Self {
        let size = bytes.max(4096).next_multiple_of(16);
        let layout = Layout::from_size_align(size, 16).expect("valid stack layout");
        // SAFETY: layout has non-zero size.
        let base = unsafe { alloc(layout) };
        assert!(!base.is_null(), "task stack allocation failed");
        // SAFETY: base..base+CANARY_BYTES is inside the fresh allocation.
        unsafe { std::ptr::write_bytes(base, CANARY_FILL, CANARY_BYTES) };
        TaskStack { base, layout }
    }

    /// One past the highest usable address; 16-byte aligned.
    pub(crate) fn top(&self) -> usize {
        self.base as usize + self.layout.size()
    }

    /// Whether the low-end canary is intact. A dead canary means the task
    /// overflowed its stack into the canary region (and possibly beyond).
    pub(crate) fn canary_ok(&self) -> bool {
        // SAFETY: the canary region is inside the live allocation.
        unsafe { std::slice::from_raw_parts(self.base, CANARY_BYTES) }
            .iter()
            .all(|&b| b == CANARY_FILL)
    }
}

impl Drop for TaskStack {
    fn drop(&mut self) {
        // SAFETY: base/layout came from `alloc` in `new`.
        unsafe { dealloc(self.base, self.layout) };
    }
}

/// Builds the initial context of a fresh task on `stack`: the first swap
/// into it enters the assembly trampoline, which calls
/// `hetero_simmpi_task_entry(ctl)`.
#[cfg_attr(
    not(any(target_arch = "x86_64", target_arch = "aarch64")),
    allow(unused_variables, unused_mut)
)]
pub(crate) fn init_context(stack: &TaskStack, ctl: *mut ()) -> Context {
    let mut ctx = Context::new();
    let top = stack.top();
    debug_assert_eq!(top % 16, 0);
    #[cfg(target_arch = "x86_64")]
    {
        // Plant the trampoline address as the "return address" the first
        // swap's `ret` pops. rsp % 16 == 8 at that point, which is exactly
        // the ABI state on function entry, so the trampoline's `call` lands
        // in `hetero_simmpi_task_entry` with a conformant stack.
        let slot = (top - 8) as *mut usize;
        // SAFETY: top-8 is inside the stack allocation and 8-aligned.
        unsafe { *slot = hetero_simmpi_ctx_entry as *const () as usize };
        ctx.regs[REG_SP] = top - 8;
        ctx.regs[REG_ARG] = ctl as usize;
    }
    #[cfg(target_arch = "aarch64")]
    {
        // The swap's `ret` branches to the restored link register; sp must
        // stay 16-aligned at all times on aarch64.
        ctx.regs[REG_SP] = top;
        ctx.regs[REG_ARG] = ctl as usize;
        ctx.regs[REG_LR] = hetero_simmpi_ctx_entry as *const () as usize;
    }
    ctx
}
