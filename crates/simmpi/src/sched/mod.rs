//! M:N cooperative rank scheduler: simulated ranks as stackful coroutines
//! multiplexed onto a fixed worker pool.
//!
//! Each rank is a [`TaskCtl`]: a heap stack plus a saved register context.
//! Workers pull ranks off a run queue ordered by the minimum
//! `(virtual_time, rank)` key and resume them with a context switch; a rank
//! runs until it blocks in `recv`/`wait_all` (the only points where the
//! virtual clock must wait for a peer), then switches back to the worker.
//!
//! # Yield protocol (how the lost-wakeup race is impossible)
//!
//! A blocking rank does *not* register itself as blocked: it writes
//! `Pending::Block` into its control block and switches to the worker. The
//! **worker** then — under the scheduler mutex — re-checks the mailbox and
//! either re-queues the rank as runnable (the message, or the sender's
//! termination, raced the yield) or records it as `Blocked` and indexes it
//! under its sender. A sender that finds its destination `Blocked` on the
//! matching `(src, tag)` re-queues it. Since registration and wake both
//! happen under the one mutex, and the registration re-checks the mailbox,
//! no message can slip between "queue was empty" and "now I'm asleep".
//!
//! # Determinism
//!
//! Results never depend on scheduling order in the first place: virtual
//! clocks are pure functions of the program, config, and per-`(src, dst)`
//! message sequence numbers (see `DESIGN.md` §9). The min-`(time, rank)`
//! policy is about *structure*: the run queue is a deterministic priority
//! order, a single worker executes ranks in exactly virtual-time order, and
//! the fault path needs no poison-ordering subtlety — a dead rank's waiters
//! are woken from the scheduler itself.
//!
//! # Deadlock
//!
//! A cyclic wait (every unfinished rank blocked, nothing runnable or
//! running) is *detected structurally*: the last worker to register a block
//! observes the condition, records a deterministic report naming the
//! blocked ranks in rank order, and resumes every blocked rank with
//! [`Verdict::Deadlock`]. Each victim unwinds through the normal poison
//! path (running its destructors, so no coroutine stack is dropped with
//! live frames), and the engine re-raises the report. The thread engine
//! would simply hang on the same program.

#![allow(unsafe_code)]

pub(crate) mod context;

use crate::comm::SharedComm;
use context::{ctx_swap, init_context, Context, TaskStack};
use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// What a task asks its worker to do after yielding.
enum Pending {
    /// Sleep until a message from `(src, tag)` can be received (subject to
    /// the worker's registration re-check).
    Block { src: usize, tag: u64, clock: f64 },
    /// The task's body returned (or unwound and was caught); never resumed.
    Finished,
}

/// Why a blocked task was resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Verdict {
    /// Re-check the mailbox: a message arrived or the sender terminated.
    Retry,
    /// The job is deadlocked; unwind via the poison path.
    Deadlock,
}

/// Per-rank scheduling state.
#[derive(Clone, Copy, PartialEq)]
enum Status {
    /// In the run queue.
    Runnable,
    /// Owned by a worker right now.
    Running,
    /// Asleep waiting on `(src, tag)`; `key` is the frozen clock sort key.
    Blocked { src: usize, tag: u64, key: u64 },
    /// Done; will never run again.
    Finished,
}

/// Sort key for the run queue: non-negative finite f64 bit patterns order
/// the same as the values, so the heap needs no float comparator.
fn clock_key(clock: f64) -> u64 {
    debug_assert!(clock >= 0.0 && clock.is_finite());
    clock.to_bits()
}

/// Control block of one coroutine task. Accessed only by the worker that
/// currently owns the task (hand-offs synchronize through the scheduler
/// mutex), so the raw-pointer sharing in [`TaskTable`] is single-writer.
pub(crate) struct TaskCtl {
    rank: usize,
    /// The task's saved context while suspended; the save target while it
    /// runs.
    ctx: Context,
    /// The resuming worker's context, to switch back to on yield.
    ret: *mut Context,
    pending: Option<Pending>,
    verdict: Verdict,
    /// The body; consumed on first entry.
    entry: Option<Box<dyn FnOnce() + Send + 'static>>,
    /// Panic payload of an unwind that escaped the body's own
    /// `catch_unwind` (an engine bug, not an application panic) — kept so
    /// the failure stays diagnosable.
    crash: Option<String>,
    stack: TaskStack,
}

// Raw pointers block the auto-impl; ownership hand-off between workers is
// serialized by the scheduler mutex.
unsafe impl Send for TaskCtl {}

impl TaskCtl {
    /// Builds a not-yet-started task whose first resume runs `entry`.
    pub(crate) fn new(
        rank: usize,
        stack_bytes: usize,
        entry: Box<dyn FnOnce() + Send + 'static>,
    ) -> Box<TaskCtl> {
        let stack = TaskStack::new(stack_bytes);
        let mut ctl = Box::new(TaskCtl {
            rank,
            ctx: Context::new(),
            ret: std::ptr::null_mut(),
            pending: None,
            verdict: Verdict::Retry,
            entry: Some(entry),
            crash: None,
            stack,
        });
        let ptr: *mut TaskCtl = &mut *ctl;
        ctl.ctx = init_context(&ctl.stack, ptr.cast());
        ctl
    }

    /// The crash payload, if the task died outside its own `catch_unwind`.
    pub(crate) fn crash_message(&mut self) -> Option<String> {
        self.crash.take()
    }
}

/// Erases the lifetime of a task body so it can live in a [`TaskCtl`].
///
/// # Safety contract (checked by construction, not the compiler)
/// Every task created from the boxed closure must finish — or be unwound
/// and finish — before the borrows it captures go out of scope. The engine
/// guarantees this by running all tasks to completion inside a
/// `std::thread::scope` that outlives nothing the closure borrows.
pub(crate) fn erase_task_lifetime(
    f: Box<dyn FnOnce() + Send + '_>,
) -> Box<dyn FnOnce() + Send + 'static> {
    // SAFETY: see the doc comment; the only caller upholds it.
    unsafe { std::mem::transmute(f) }
}

/// Shared read-only table of task pointers for the worker pool.
pub(crate) struct TaskTable {
    ptrs: Vec<*mut TaskCtl>,
}

// Each pointee is accessed by one worker at a time (scheduler-mutex
// hand-off), so sharing the table of pointers is safe.
unsafe impl Sync for TaskTable {}

impl TaskTable {
    pub(crate) fn new(tasks: &mut [Box<TaskCtl>]) -> Self {
        TaskTable {
            ptrs: tasks.iter_mut().map(|t| &mut **t as *mut TaskCtl).collect(),
        }
    }

    fn ptr(&self, rank: usize) -> *mut TaskCtl {
        self.ptrs[rank]
    }
}

thread_local! {
    /// The task currently running on this OS thread, if any. Set by the
    /// worker around each resume; read by the communicator's yield hook.
    static CURRENT: Cell<*mut TaskCtl> = const { Cell::new(std::ptr::null_mut()) };
}

/// First entry point of every coroutine; called by the assembly trampoline.
///
/// Runs the task body under a backstop `catch_unwind` (the body has its own
/// that maps panics to rank outcomes; this one only exists so unwinding can
/// never cross the trampoline frame), then yields `Finished` forever.
#[no_mangle]
unsafe extern "C" fn hetero_simmpi_task_entry(ctl: *mut TaskCtl) -> ! {
    // SAFETY: the worker that resumed us owns `ctl` and is suspended in
    // `ctx_swap` until we switch back; we are the only accessor.
    unsafe {
        let entry = (*ctl).entry.take().expect("fresh task has a body");
        if let Err(payload) = std::panic::catch_unwind(AssertUnwindSafe(entry)) {
            (*ctl).crash = Some(crate::engine::panic_message(payload.as_ref()));
        }
        (*ctl).pending = Some(Pending::Finished);
        ctx_swap(&mut (*ctl).ctx, (*ctl).ret);
    }
    // A finished task is never resumed; reaching here is unrecoverable.
    std::process::abort();
}

/// Task-side block: parks the current coroutine until the scheduler wakes
/// it, returning why. Must be called with no mailbox lock held.
pub(crate) fn yield_blocked(src: usize, tag: u64, clock: f64) -> Verdict {
    let ctl = CURRENT.with(Cell::get);
    assert!(
        !ctl.is_null(),
        "cooperative blocking outside a scheduler task"
    );
    // SAFETY: `ctl` is the task running on this thread; its worker is
    // suspended in ctx_swap and resumes exactly once we switch back.
    unsafe {
        (*ctl).pending = Some(Pending::Block { src, tag, clock });
        ctx_swap(&mut (*ctl).ctx, (*ctl).ret);
        (*ctl).verdict
    }
}

struct SchedState {
    /// Min-heap of runnable ranks keyed by `(virtual clock, rank)`.
    run_queue: BinaryHeap<Reverse<(u64, usize)>>,
    status: Vec<Status>,
    /// Verdict a queued rank will resume with.
    verdicts: Vec<Verdict>,
    /// `waiters[s]` = ranks currently `Blocked` on sender `s`, so a send or
    /// termination wakes its dependents in O(dependents), not O(size).
    waiters: Vec<Vec<usize>>,
    running: usize,
    finished: usize,
    deadlock: Option<String>,
    all_done: bool,
}

/// The shared M:N scheduler for one engine run.
pub(crate) struct Scheduler {
    size: usize,
    state: Mutex<SchedState>,
    cv: Condvar,
}

impl Scheduler {
    /// Creates the scheduler with every rank runnable at virtual time 0.
    pub(crate) fn new(size: usize) -> Arc<Self> {
        let mut run_queue = BinaryHeap::with_capacity(size);
        for rank in 0..size {
            run_queue.push(Reverse((clock_key(0.0), rank)));
        }
        Arc::new(Scheduler {
            size,
            state: Mutex::new(SchedState {
                run_queue,
                status: vec![Status::Runnable; size],
                verdicts: vec![Verdict::Retry; size],
                waiters: vec![Vec::new(); size],
                running: 0,
                finished: 0,
                deadlock: None,
                all_done: false,
            }),
            cv: Condvar::new(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, SchedState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The deterministic deadlock report, if the run deadlocked.
    pub(crate) fn deadlock_report(&self) -> Option<String> {
        self.lock().deadlock.clone()
    }

    /// Sender-side wake: if `dst` is blocked on exactly `(src, tag)`,
    /// re-queue it. Called by the communicator *after* releasing the
    /// mailbox lock (lock order is scheduler → mailbox, worker side only).
    pub(crate) fn notify_send(&self, src: usize, dst: usize, tag: u64) {
        let mut s = self.lock();
        if let Status::Blocked {
            src: bs,
            tag: bt,
            key,
        } = s.status[dst]
        {
            if bs == src && bt == tag {
                s.waiters[src].retain(|&r| r != dst);
                s.status[dst] = Status::Runnable;
                s.verdicts[dst] = Verdict::Retry;
                s.run_queue.push(Reverse((key, dst)));
                drop(s);
                self.cv.notify_one();
            }
        }
    }

    /// Requeues every rank blocked on `dead` so it can observe the
    /// termination flag (raised before this call) and unwind or drain the
    /// final racing message. Runs under the scheduler mutex the caller
    /// already holds.
    fn wake_waiters_locked(s: &mut SchedState, dead: usize) {
        let ws = std::mem::take(&mut s.waiters[dead]);
        for r in ws {
            if let Status::Blocked { key, .. } = s.status[r] {
                s.status[r] = Status::Runnable;
                s.verdicts[r] = Verdict::Retry;
                s.run_queue.push(Reverse((key, r)));
            }
        }
    }

    /// Declares a deadlock if nothing is runnable or running and unfinished
    /// ranks remain: records the report and resumes every blocked rank with
    /// [`Verdict::Deadlock`] so its coroutine unwinds cleanly.
    fn check_deadlock_locked(&self, s: &mut SchedState) {
        if s.deadlock.is_some()
            || s.all_done
            || s.running != 0
            || !s.run_queue.is_empty()
            || s.finished == self.size
        {
            return;
        }
        let blocked: Vec<(usize, usize, u64)> = s
            .status
            .iter()
            .enumerate()
            .filter_map(|(r, st)| match *st {
                Status::Blocked { src, tag, .. } => Some((r, src, tag)),
                _ => None,
            })
            .collect();
        if blocked.is_empty() {
            return;
        }
        let mut report = format!(
            "job deadlocked: {} rank(s) blocked with nothing runnable:",
            blocked.len()
        );
        for (r, src, tag) in blocked.iter().take(8) {
            report.push_str(&format!(" rank {r} waits on recv(src={src}, tag={tag});"));
        }
        if blocked.len() > 8 {
            report.push_str(&format!(" … and {} more", blocked.len() - 8));
        }
        s.deadlock = Some(report);
        // Stale `waiters` entries are harmless: every wake re-checks that
        // the rank is still `Blocked` before touching it.
        for (r, _, _) in blocked {
            if let Status::Blocked { key, .. } = s.status[r] {
                s.status[r] = Status::Runnable;
                s.verdicts[r] = Verdict::Deadlock;
                s.run_queue.push(Reverse((key, r)));
            }
        }
        self.cv.notify_all();
    }

    /// One worker of the pool: pops the min-`(virtual_time, rank)` runnable
    /// task, resumes it, and processes what it yielded, until every rank
    /// has finished. The engine's calling thread is worker 0, so a
    /// single-worker run spawns no threads at all.
    pub(crate) fn worker_loop(&self, shared: &SharedComm, tasks: &TaskTable) {
        let mut worker_ctx = Context::new();
        loop {
            let (rank, verdict) = {
                let mut s = self.lock();
                loop {
                    if s.all_done {
                        return;
                    }
                    if let Some(Reverse((_, rank))) = s.run_queue.pop() {
                        debug_assert!(s.status[rank] == Status::Runnable);
                        s.status[rank] = Status::Running;
                        s.running += 1;
                        break (rank, s.verdicts[rank]);
                    }
                    s = self
                        .cv
                        .wait(s)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };

            let ctl = tasks.ptr(rank);
            // SAFETY: popping `rank` as Running under the mutex made this
            // worker the task's unique owner; the switch returns only when
            // the task yields on this same thread.
            unsafe {
                debug_assert_eq!((*ctl).rank, rank);
                (*ctl).verdict = verdict;
                (*ctl).ret = &mut worker_ctx;
                CURRENT.with(|c| c.set(ctl));
                ctx_swap(&mut worker_ctx, &(*ctl).ctx);
                CURRENT.with(|c| c.set(std::ptr::null_mut()));
                if !(*ctl).stack.canary_ok() {
                    // The stack already overran its allocation; unwinding
                    // through possibly-corrupt memory would be worse.
                    eprintln!("fatal: rank {rank} overflowed its coroutine stack");
                    std::process::abort();
                }
            }

            // SAFETY: still the unique owner until the status is updated
            // under the mutex below.
            let pending = unsafe { (*ctl).pending.take() }.expect("a yield always sets pending");
            match pending {
                Pending::Block { src, tag, clock } => {
                    let key = clock_key(clock);
                    let mut s = self.lock();
                    s.running -= 1;
                    // Registration re-check: the message (or the sender's
                    // death, or a deadlock declaration) may have raced the
                    // yield; in that case the rank stays runnable.
                    if s.deadlock.is_some()
                        || shared.has_queued(rank, src, tag)
                        || shared.rank_terminated(src)
                    {
                        s.verdicts[rank] = if s.deadlock.is_some() {
                            Verdict::Deadlock
                        } else {
                            Verdict::Retry
                        };
                        s.status[rank] = Status::Runnable;
                        s.run_queue.push(Reverse((key, rank)));
                        drop(s);
                        self.cv.notify_one();
                    } else {
                        s.status[rank] = Status::Blocked { src, tag, key };
                        s.waiters[src].push(rank);
                        self.check_deadlock_locked(&mut s);
                    }
                }
                Pending::Finished => {
                    // Raise the termination flag *before* waking waiters so
                    // a woken receiver that still finds its queue empty can
                    // safely conclude the message will never come.
                    shared.mark_terminated_quiet(rank);
                    let mut s = self.lock();
                    s.running -= 1;
                    s.status[rank] = Status::Finished;
                    s.finished += 1;
                    Self::wake_waiters_locked(&mut s, rank);
                    if s.finished == self.size {
                        s.all_done = true;
                    }
                    self.check_deadlock_locked(&mut s);
                    drop(s);
                    self.cv.notify_all();
                }
            }
        }
    }
}
