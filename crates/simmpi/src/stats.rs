//! Per-rank accounting of simulated work and communication.

use serde::{Deserialize, Serialize};

/// Counters a rank accumulates while executing under the simulator.
///
/// `compute_time + comm_time` need not equal the final clock exactly:
/// `comm_time` counts only the clock advance attributable to waiting for and
/// unpacking messages, while explicit [`crate::SimComm::advance`] calls (used
/// by schedulers) are tracked separately in `other_time`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CommStats {
    /// Messages sent.
    pub msgs_sent: u64,
    /// Modeled payload bytes sent.
    pub bytes_sent: f64,
    /// Messages received.
    pub msgs_received: u64,
    /// Modeled payload bytes received.
    pub bytes_received: f64,
    /// Floating-point operations executed (modeled).
    pub flops: f64,
    /// Memory-traffic bytes executed (modeled).
    pub mem_bytes: f64,
    /// Simulated seconds spent in compute.
    pub compute_time: f64,
    /// Simulated seconds of clock advance caused by communication
    /// (send overheads plus receive waits).
    pub comm_time: f64,
    /// Simulated seconds injected via `advance`.
    pub other_time: f64,
}

impl CommStats {
    /// Merges another rank's counters into this one (for job-level totals).
    pub fn merge(&mut self, other: &CommStats) {
        self.msgs_sent += other.msgs_sent;
        self.bytes_sent += other.bytes_sent;
        self.msgs_received += other.msgs_received;
        self.bytes_received += other.bytes_received;
        self.flops += other.flops;
        self.mem_bytes += other.mem_bytes;
        self.compute_time += other.compute_time;
        self.comm_time += other.comm_time;
        self.other_time += other.other_time;
    }

    /// Fraction of accounted time spent communicating (0 when idle).
    pub fn comm_fraction(&self) -> f64 {
        let total = self.compute_time + self.comm_time;
        if total == 0.0 {
            0.0
        } else {
            self.comm_time / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = CommStats {
            msgs_sent: 2,
            bytes_sent: 100.0,
            compute_time: 1.0,
            ..Default::default()
        };
        let b = CommStats {
            msgs_sent: 3,
            bytes_sent: 50.0,
            comm_time: 0.5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.msgs_sent, 5);
        assert_eq!(a.bytes_sent, 150.0);
        assert_eq!(a.compute_time, 1.0);
        assert_eq!(a.comm_time, 0.5);
    }

    #[test]
    fn comm_fraction_bounds() {
        let idle = CommStats::default();
        assert_eq!(idle.comm_fraction(), 0.0);
        let busy = CommStats {
            compute_time: 3.0,
            comm_time: 1.0,
            ..Default::default()
        };
        assert!((busy.comm_fraction() - 0.25).abs() < 1e-12);
    }
}
