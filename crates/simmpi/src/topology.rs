//! Cluster topology: ranks, nodes, and placement groups.

use serde::{Deserialize, Serialize};

/// Where ranks physically live: `num_nodes` nodes with `cores_per_node`
/// cores each, optionally spread over *placement groups* (Amazon EC2's
/// network-aware host allocation — nodes in the same group enjoy better
/// inter-node locality).
///
/// Ranks are placed in block order, like `mpiexec` with a sequential hosts
/// list: rank `r` lives on node `r / cores_per_node`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterTopology {
    cores_per_node: usize,
    /// Placement-group id per node; length is the node count.
    groups: Vec<usize>,
}

impl ClusterTopology {
    /// A cluster of `num_nodes` identical nodes in one placement group.
    pub fn uniform(num_nodes: usize, cores_per_node: usize) -> Self {
        assert!(num_nodes > 0 && cores_per_node > 0);
        ClusterTopology {
            cores_per_node,
            groups: vec![0; num_nodes],
        }
    }

    /// A cluster whose node `i` belongs to placement group `groups[i]`.
    pub fn with_groups(cores_per_node: usize, groups: Vec<usize>) -> Self {
        assert!(cores_per_node > 0 && !groups.is_empty());
        ClusterTopology {
            cores_per_node,
            groups,
        }
    }

    /// A cluster of `num_nodes` nodes dealt round-robin into `num_groups`
    /// placement groups (the paper's "mix" configuration used 63 hosts from
    /// four groups).
    pub fn round_robin_groups(num_nodes: usize, cores_per_node: usize, num_groups: usize) -> Self {
        assert!(num_groups > 0);
        ClusterTopology {
            cores_per_node,
            groups: (0..num_nodes).map(|n| n % num_groups).collect(),
        }
    }

    /// Cores per node.
    #[inline]
    pub fn cores_per_node(&self) -> usize {
        self.cores_per_node
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.groups.len()
    }

    /// Total core capacity.
    #[inline]
    pub fn total_cores(&self) -> usize {
        self.num_nodes() * self.cores_per_node
    }

    /// Node hosting `rank`.
    ///
    /// # Panics
    /// Panics if the rank exceeds the cluster capacity.
    #[inline]
    pub fn node_of_rank(&self, rank: usize) -> usize {
        let node = rank / self.cores_per_node;
        assert!(
            node < self.num_nodes(),
            "rank {rank} exceeds cluster capacity"
        );
        node
    }

    /// Placement group of a node.
    #[inline]
    pub fn group_of_node(&self, node: usize) -> usize {
        self.groups[node]
    }

    /// Whether two ranks share a node.
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of_rank(a) == self.node_of_rank(b)
    }

    /// Whether two ranks' nodes share a placement group.
    #[inline]
    pub fn same_group(&self, a: usize, b: usize) -> bool {
        self.group_of_node(self.node_of_rank(a)) == self.group_of_node(self.node_of_rank(b))
    }

    /// Nodes needed to host `ranks` ranks.
    #[inline]
    pub fn nodes_for_ranks(&self, ranks: usize) -> usize {
        ranks.div_ceil(self.cores_per_node)
    }

    /// Number of ranks living on `node` in a job of `total_ranks` ranks.
    pub fn ranks_on_node(&self, node: usize, total_ranks: usize) -> usize {
        let lo = node * self.cores_per_node;
        if total_ranks <= lo {
            0
        } else {
            (total_ranks - lo).min(self.cores_per_node)
        }
    }

    /// Number of distinct placement groups among the first `nodes` nodes.
    pub fn groups_in_use(&self, nodes: usize) -> usize {
        let mut seen = std::collections::BTreeSet::new();
        for &g in self.groups.iter().take(nodes) {
            seen.insert(g);
        }
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_placement() {
        let t = ClusterTopology::uniform(4, 4);
        assert_eq!(t.node_of_rank(0), 0);
        assert_eq!(t.node_of_rank(3), 0);
        assert_eq!(t.node_of_rank(4), 1);
        assert_eq!(t.node_of_rank(15), 3);
        assert!(t.same_node(0, 3));
        assert!(!t.same_node(3, 4));
    }

    #[test]
    #[should_panic(expected = "exceeds cluster capacity")]
    fn rank_beyond_capacity_panics() {
        ClusterTopology::uniform(2, 4).node_of_rank(8);
    }

    #[test]
    fn nodes_for_ranks_paper_example() {
        // cc2.8xlarge: 16 cores; 1000 ranks fit on 63 instances.
        let t = ClusterTopology::uniform(63, 16);
        assert_eq!(t.nodes_for_ranks(1000), 63);
        assert_eq!(t.nodes_for_ranks(1), 1);
        assert_eq!(t.nodes_for_ranks(16), 1);
        assert_eq!(t.nodes_for_ranks(17), 2);
    }

    #[test]
    fn ranks_on_node_counts() {
        let t = ClusterTopology::uniform(3, 4);
        // 10 ranks: 4 + 4 + 2.
        assert_eq!(t.ranks_on_node(0, 10), 4);
        assert_eq!(t.ranks_on_node(1, 10), 4);
        assert_eq!(t.ranks_on_node(2, 10), 2);
    }

    #[test]
    fn placement_groups() {
        let t = ClusterTopology::round_robin_groups(8, 16, 4);
        assert_eq!(t.group_of_node(0), 0);
        assert_eq!(t.group_of_node(5), 1);
        assert!(t.same_group(0, 15)); // same node 0
        assert!(!t.same_group(0, 16)); // node 0 (group 0) vs node 1 (group 1)
        assert_eq!(t.groups_in_use(8), 4);
        assert_eq!(t.groups_in_use(2), 2);
        assert_eq!(t.groups_in_use(1), 1);
    }

    #[test]
    fn uniform_is_single_group() {
        let t = ClusterTopology::uniform(10, 2);
        assert_eq!(t.groups_in_use(10), 1);
        assert!(t.same_group(0, 19));
    }
}
