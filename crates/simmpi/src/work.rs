//! Computational work accounting and the roofline compute model.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Mul};

/// A quantity of computational work: floating-point operations and bytes of
/// memory traffic.
///
/// Application kernels (assembly loops, SpMV, vector updates) report their
/// analytic operation counts through [`crate::SimComm::compute`]; the
/// platform's [`ComputeModel`] converts them to simulated seconds. Timing
/// therefore never depends on how fast the *host* executes the real
/// arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Work {
    /// Floating-point operations.
    pub flops: f64,
    /// Bytes moved through the memory hierarchy.
    pub bytes: f64,
}

impl Work {
    /// No work.
    pub const ZERO: Work = Work {
        flops: 0.0,
        bytes: 0.0,
    };

    /// Creates a work quantity.
    #[inline]
    pub const fn new(flops: f64, bytes: f64) -> Self {
        Work { flops, bytes }
    }

    /// Pure floating-point work with an assumed 1 byte of traffic per flop
    /// (a typical FEM/SpMV balance; callers with better estimates should use
    /// [`Work::new`]).
    #[inline]
    pub fn flops(f: f64) -> Self {
        Work { flops: f, bytes: f }
    }

    /// Arithmetic intensity (flops per byte); infinite for byte-free work.
    #[inline]
    pub fn intensity(&self) -> f64 {
        if self.bytes == 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.bytes
        }
    }
}

impl Add for Work {
    type Output = Work;
    #[inline]
    fn add(self, rhs: Work) -> Work {
        Work {
            flops: self.flops + rhs.flops,
            bytes: self.bytes + rhs.bytes,
        }
    }
}

impl AddAssign for Work {
    #[inline]
    fn add_assign(&mut self, rhs: Work) {
        *self = *self + rhs;
    }
}

impl Mul<f64> for Work {
    type Output = Work;
    #[inline]
    fn mul(self, s: f64) -> Work {
        Work {
            flops: self.flops * s,
            bytes: self.bytes * s,
        }
    }
}

/// A roofline execution model for one CPU core of a platform.
///
/// Time for a kernel is `max(flops / flops_per_sec, bytes / mem_bw)` — the
/// kernel is either compute-bound or memory-bound. Sparse FEM kernels on the
/// paper's 2006–2011 era CPUs are strongly memory-bound, which is why the
/// per-core sustained rates below are far under peak.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeModel {
    /// Sustained floating-point rate per core (flop/s).
    pub flops_per_sec: f64,
    /// Sustained memory bandwidth per core (byte/s). On multi-core nodes the
    /// socket bandwidth is shared; callers should pass the per-core share.
    pub mem_bw: f64,
}

impl ComputeModel {
    /// Creates a model from sustained per-core rates.
    ///
    /// # Panics
    /// Panics if either rate is not strictly positive.
    pub fn new(flops_per_sec: f64, mem_bw: f64) -> Self {
        assert!(
            flops_per_sec > 0.0 && mem_bw > 0.0,
            "rates must be positive"
        );
        ComputeModel {
            flops_per_sec,
            mem_bw,
        }
    }

    /// Simulated seconds to execute `work` on one core.
    #[inline]
    pub fn time(&self, work: Work) -> f64 {
        (work.flops / self.flops_per_sec).max(work.bytes / self.mem_bw)
    }

    /// The arithmetic intensity (flops/byte) at which a kernel transitions
    /// from memory-bound to compute-bound.
    #[inline]
    pub fn ridge_intensity(&self) -> f64 {
        self.flops_per_sec / self.mem_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_arithmetic() {
        let a = Work::new(10.0, 20.0);
        let b = Work::new(1.0, 2.0);
        assert_eq!(a + b, Work::new(11.0, 22.0));
        assert_eq!(a * 2.0, Work::new(20.0, 40.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
    }

    #[test]
    fn intensity() {
        assert_eq!(Work::new(8.0, 4.0).intensity(), 2.0);
        assert_eq!(Work::new(8.0, 0.0).intensity(), f64::INFINITY);
    }

    #[test]
    fn roofline_compute_bound() {
        let m = ComputeModel::new(1e9, 1e9);
        // Intensity 4 > ridge 1: compute-bound.
        let t = m.time(Work::new(4e9, 1e9));
        assert!((t - 4.0).abs() < 1e-12);
    }

    #[test]
    fn roofline_memory_bound() {
        let m = ComputeModel::new(1e9, 1e8);
        // SpMV-like low intensity: memory-bound.
        let t = m.time(Work::new(1e8, 1e9));
        assert!((t - 10.0).abs() < 1e-12);
    }

    #[test]
    fn ridge_point() {
        let m = ComputeModel::new(2e9, 5e8);
        assert_eq!(m.ridge_intensity(), 4.0);
        // Exactly at the ridge, both bounds agree.
        let w = Work::new(4e8, 1e8);
        assert!((m.time(w) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn zero_work_is_free() {
        let m = ComputeModel::new(1e9, 1e9);
        assert_eq!(m.time(Work::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "rates must be positive")]
    fn invalid_model_rejected() {
        ComputeModel::new(0.0, 1.0);
    }
}
