//! Property-based tests of the simulator's semantic guarantees.

use hetero_simmpi::collectives::ReduceOp;
use hetero_simmpi::modeled::{VirtualEnv, VirtualMsg, VirtualRank};
use hetero_simmpi::rng::{jitter_factor, to_unit};
use hetero_simmpi::{
    run_spmd, run_spmd_opts, ClusterTopology, ComputeModel, EngineOpts, FaultPlan, MsgContext,
    NetworkModel, Payload, SimComm, SpmdConfig, Work,
};
use proptest::prelude::*;

fn cfg(size: usize, seed: u64) -> SpmdConfig {
    SpmdConfig {
        size,
        topo: ClusterTopology::uniform(size.div_ceil(4).max(1), 4),
        net: NetworkModel::gigabit_ethernet(),
        compute: ComputeModel::new(1e9, 4e9),
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn allreduce_equals_serial_fold(
        size in 1usize..10,
        values in prop::collection::vec(-10.0f64..10.0, 1..5),
        op_pick in 0usize..3,
    ) {
        let op = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min][op_pick];
        let vals = values.clone();
        let results = run_spmd(cfg(size, 1), move |comm| {
            // Rank r contributes values scaled by (r+1).
            let mine: Vec<f64> =
                vals.iter().map(|v| v * (comm.rank() + 1) as f64).collect();
            comm.allreduce(op, &mine)
        });
        // Serial oracle.
        for (slot, &v) in values.iter().enumerate() {
            let contributions: Vec<f64> =
                (0..size).map(|r| v * (r + 1) as f64).collect();
            let expect = match op {
                ReduceOp::Sum => contributions.iter().sum::<f64>(),
                ReduceOp::Max => contributions.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                ReduceOp::Min => contributions.iter().cloned().fold(f64::INFINITY, f64::min),
            };
            for r in &results {
                prop_assert!((r.value[slot] - expect).abs() < 1e-9,
                    "slot {slot}: {} vs {expect}", r.value[slot]);
            }
        }
    }

    #[test]
    fn clocks_are_monotone_and_nonnegative(size in 2usize..8, rounds in 1usize..6) {
        let results = run_spmd(cfg(size, 2), move |comm| {
            let mut last = comm.clock();
            let mut ok = last >= 0.0;
            for _ in 0..rounds {
                comm.compute(Work::new(1e6, 1e6));
                ok &= comm.clock() >= last;
                last = comm.clock();
                let next = (comm.rank() + 1) % comm.size();
                let prev = (comm.rank() + comm.size() - 1) % comm.size();
                comm.send(next, 0, Payload::F64(vec![1.0; 16]));
                let _ = comm.recv_f64(prev, 0);
                ok &= comm.clock() >= last;
                last = comm.clock();
            }
            ok
        });
        for r in &results {
            prop_assert!(r.value);
            prop_assert!(r.clock > 0.0);
        }
    }

    #[test]
    fn virtual_time_is_scheduling_independent(size in 2usize..8, seed in 0u64..50) {
        let body = move |comm: &mut hetero_simmpi::SimComm| {
            for _ in 0..3 {
                let _ = comm.allreduce_scalar(ReduceOp::Sum, comm.rank() as f64);
                comm.barrier();
            }
            comm.clock()
        };
        let a = run_spmd(cfg(size, seed), body);
        let b = run_spmd(cfg(size, seed), body);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.value, y.value);
        }
    }

    #[test]
    fn transfer_cost_is_monotone_in_bytes(
        b1 in 0.0f64..1e6,
        extra in 1.0f64..1e6,
        sharers in 1usize..16,
        nodes in 1usize..64,
    ) {
        let net = NetworkModel::gigabit_ethernet();
        let ctx = |bytes: f64| MsgContext {
            bytes,
            same_node: false,
            same_group: true,
            nic_sharers: sharers,
            nodes_active: nodes,
            jitter_key: (1, 2, 3, 4),
        };
        prop_assert!(net.transfer_time(ctx(b1 + extra)) > net.transfer_time(ctx(b1)));
    }

    #[test]
    fn contention_is_monotone_in_nodes(n1 in 1usize..100, n2 in 1usize..100) {
        let net = NetworkModel::ten_gig_ethernet_ec2();
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        prop_assert!(net.fabric_contention(lo) <= net.fabric_contention(hi));
        prop_assert!(net.fabric_contention(lo) >= 1.0);
    }

    #[test]
    fn jitter_is_positive_and_mean_preserving(seed in 0u64..100, sigma in 0.0f64..0.6) {
        let n = 4000u64;
        let mut sum = 0.0;
        for s in 0..n {
            let j = jitter_factor(seed, 1, 2, s, sigma);
            prop_assert!(j > 0.0);
            sum += j;
        }
        let mean = sum / n as f64;
        prop_assert!((mean - 1.0).abs() < 0.08, "mean = {mean}");
    }

    #[test]
    fn unit_samples_stay_in_range(h in any::<u64>()) {
        let u = to_unit(h);
        prop_assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn virtual_rank_halo_cost_is_monotone_in_message_count(
        peers in 1usize..20,
        bytes in 1.0f64..1e5,
    ) {
        let env = VirtualEnv {
            net: NetworkModel::gigabit_ethernet(),
            compute: ComputeModel::new(1e9, 4e9),
            nic_sharers: 4,
            nodes_active: 8,
            size: 32,
            rank: 0,
            seed: 9,
        };
        let cost = |k: usize| {
            let mut v = VirtualRank::new(env.clone());
            let msgs: Vec<VirtualMsg> = (0..k)
                .map(|p| VirtualMsg { peer: p + 1, bytes, same_node: false, same_group: true })
                .collect();
            v.halo_exchange(&msgs);
            v.clock()
        };
        prop_assert!(cost(peers + 1) > cost(peers));
    }

    #[test]
    fn gather_roundtrips_any_payload(
        size in 1usize..8,
        payload in prop::collection::vec(-5.0f64..5.0, 0..6),
    ) {
        let p2 = payload.clone();
        let results = run_spmd(cfg(size, 3), move |comm| {
            let mut mine = p2.clone();
            mine.push(comm.rank() as f64);
            comm.gather(0, &mine)
        });
        let root = results[0].value.as_ref().unwrap();
        for (r, v) in root.iter().enumerate() {
            let mut expect = payload.clone();
            expect.push(r as f64);
            prop_assert_eq!(v, &expect);
        }
    }
}

// ---- M:N cooperative-scheduler properties ----

/// One round of a randomly generated but deadlock-free SPMD program: every
/// rank executes the same round list, so every send has a matching recv.
#[derive(Debug, Clone, Copy)]
enum Round {
    /// Shift a payload of `len` f64s around the ring under `tag`.
    RingShift { tag: u64, len: usize },
    /// Same, in the other direction.
    ReverseShift { tag: u64, len: usize },
    /// A scalar sum allreduce.
    Allreduce,
    /// A dissemination barrier.
    Barrier,
    /// Local compute (advances the virtual clock without traffic).
    Compute { flops: u64 },
}

fn round_strategy() -> impl Strategy<Value = Round> {
    prop_oneof![
        (0u64..5, 1usize..64).prop_map(|(tag, len)| Round::RingShift { tag, len }),
        (0u64..5, 1usize..64).prop_map(|(tag, len)| Round::ReverseShift { tag, len }),
        Just(Round::Allreduce),
        Just(Round::Barrier),
        (1u64..50_000_000).prop_map(|flops| Round::Compute { flops }),
    ]
}

/// Executes the round list and returns a bitwise fingerprint of everything
/// observable: every received value, the running clock after each round,
/// and the final communication stats.
fn run_rounds(rounds: &[Round], comm: &mut SimComm) -> Vec<u64> {
    let size = comm.size();
    let mut fp = Vec::new();
    for r in rounds {
        match *r {
            Round::RingShift { tag, len } => {
                let next = (comm.rank() + 1) % size;
                let prev = (comm.rank() + size - 1) % size;
                comm.send(next, tag, Payload::F64(vec![comm.rank() as f64; len]));
                for v in comm.recv_f64(prev, tag) {
                    fp.push(v.to_bits());
                }
            }
            Round::ReverseShift { tag, len } => {
                let next = (comm.rank() + 1) % size;
                let prev = (comm.rank() + size - 1) % size;
                comm.send(prev, tag, Payload::F64(vec![comm.clock(); len]));
                for v in comm.recv_f64(next, tag) {
                    fp.push(v.to_bits());
                }
            }
            Round::Allreduce => {
                let s = comm.allreduce_scalar(ReduceOp::Sum, comm.rank() as f64 + 0.5);
                fp.push(s.to_bits());
            }
            Round::Barrier => comm.barrier(),
            Round::Compute { flops } => comm.compute(Work::new(flops as f64, 1e6)),
        }
        fp.push(comm.clock().to_bits());
    }
    fp.push(comm.stats().bytes_received.to_bits());
    fp
}

/// Fingerprints of all ranks under the given engine options.
fn fingerprint(cfg: &SpmdConfig, opts: EngineOpts, rounds: &[Round]) -> Vec<(Vec<u64>, u64)> {
    let rounds = rounds.to_vec();
    let (res, _) = run_spmd_opts(cfg.clone(), opts, FaultPlan::none(), None, move |comm| {
        run_rounds(&rounds, comm)
    });
    res.expect("no faults planned")
        .into_iter()
        .map(|r| (r.value, r.clock.to_bits()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random interleavings of sends, recvs, and collectives over random
    /// rank counts produce the identical message order and final clocks on
    /// the thread engine and on the cooperative engine at every pool size.
    #[test]
    fn random_programs_agree_across_engines_and_pools(
        size in 2usize..12,
        seed in 0u64..1000,
        rounds in prop::collection::vec(round_strategy(), 1..6),
    ) {
        let c = cfg(size, seed);
        let threads = fingerprint(&c, EngineOpts::threads(), &rounds);
        for workers in [1usize, 4] {
            let coop = fingerprint(&c, EngineOpts::cooperative(workers), &rounds);
            prop_assert_eq!(&coop, &threads,
                "pool of {} diverged on {:?}", workers, rounds);
        }
    }
}

#[test]
fn random_program_agrees_across_pools_past_the_thread_ceiling() {
    // The same property at a rank count the thread engine refuses
    // (> 4096): pool sizes cannot change anything observable.
    let size = 4523;
    let c = SpmdConfig {
        size,
        topo: ClusterTopology::uniform(size.div_ceil(16), 16),
        net: NetworkModel::gigabit_ethernet(),
        compute: ComputeModel::new(1e9, 4e9),
        seed: 17,
    };
    let rounds = [
        Round::RingShift { tag: 1, len: 8 },
        Round::Compute { flops: 1_000_000 },
        Round::ReverseShift { tag: 2, len: 4 },
        Round::Allreduce,
    ];
    let one = fingerprint(&c, EngineOpts::cooperative(1), &rounds);
    let four = fingerprint(&c, EngineOpts::cooperative(4), &rounds);
    assert_eq!(one, four);
}

/// Runs `f` on a fresh thread and panics if it does not finish within
/// `secs` — the scheduler must *detect* deadlocks, never hang on them.
fn with_watchdog<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(std::time::Duration::from_secs(secs))
        .expect("deadlock detection must report, not hang")
}

#[test]
fn cyclic_recv_deadlock_surfaces_as_deterministic_error() {
    // Every rank waits on its left neighbour before sending: a recv cycle
    // with no message in flight. The run must fail fast with a stable,
    // structural report — identical across runs and pool sizes.
    let report = |workers: usize| -> String {
        with_watchdog(120, move || {
            let c = SpmdConfig {
                size: 5,
                topo: ClusterTopology::uniform(5, 1),
                net: NetworkModel::ideal(),
                compute: ComputeModel::new(1e9, 1e9),
                seed: 0,
            };
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_spmd_opts(
                    c,
                    EngineOpts::cooperative(workers),
                    FaultPlan::none(),
                    None,
                    |comm| {
                        let prev = (comm.rank() + comm.size() - 1) % comm.size();
                        let _ = comm.recv_f64(prev, 9);
                    },
                )
            }))
            .expect_err("a recv cycle must fail the job");
            err.downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "non-string panic".into())
        })
    };
    let first = report(1);
    assert!(first.contains("job deadlocked"), "got: {first}");
    assert!(
        first.contains("rank 0 waits on recv(src=4, tag=9)"),
        "got: {first}"
    );
    assert_eq!(first, report(1), "deadlock report must reproduce");
    assert_eq!(first, report(4), "deadlock report must be pool-independent");
}
