//! Trace event vocabulary.
//!
//! Every event is stamped with the *virtual* clock of the rank that emitted
//! it — never wall time — so a trace is a pure function of the program, the
//! platform models, and the seed. Events are `Copy` (no heap payloads) so
//! recording one is a couple of stores into a preallocated buffer.

/// The FEM phases of one solver iteration (the paper's Figs. 4–7 split).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Matrix/vector assembly — the paper's step (ii).
    Assembly,
    /// Preconditioner computation — step (iiia).
    Precond,
    /// Krylov solution — step (iiib).
    Solve,
    /// Whatever the iteration spent outside the three named phases
    /// (BC application, history rotation, norm bookkeeping).
    Other,
    /// The enclosing whole-iteration span; its duration is the iteration
    /// wall (virtual) time, so `assembly + precond + solve + other` must
    /// reproduce it.
    Iteration,
}

impl Phase {
    /// Stable lowercase name used by every exporter.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Assembly => "assembly",
            Phase::Precond => "precond",
            Phase::Solve => "solve",
            Phase::Other => "other",
            Phase::Iteration => "iteration",
        }
    }

    /// Dense index for per-phase tables.
    pub fn index(self) -> usize {
        match self {
            Phase::Assembly => 0,
            Phase::Precond => 1,
            Phase::Solve => 2,
            Phase::Other => 3,
            Phase::Iteration => 4,
        }
    }

    /// All phases, in `index` order.
    pub const ALL: [Phase; 5] = [
        Phase::Assembly,
        Phase::Precond,
        Phase::Solve,
        Phase::Other,
        Phase::Iteration,
    ];
}

/// What happened. Span-like kinds carry their duration on the enclosing
/// [`TraceEvent`]; instant kinds have `dur == 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A FEM phase segment of time-step `step` (span).
    Phase {
        /// Which phase.
        phase: Phase,
        /// Absolute time-step index (absolute so resumed runs line up).
        step: u32,
    },
    /// One collective operation (span): `bytes` is the wire volume this
    /// rank sent inside it.
    Collective {
        /// Operation name (`"barrier"`, `"reduce"`, `"bcast"`, ...).
        op: &'static str,
        /// Modeled bytes this rank sent during the operation.
        bytes: f64,
    },
    /// A point-to-point send completed by this rank (instant).
    SendMsg {
        /// Destination rank.
        peer: u32,
        /// Modeled wire bytes.
        bytes: f64,
    },
    /// A point-to-point receive completed by this rank (span: from the
    /// moment the rank started waiting to delivery).
    RecvMsg {
        /// Source rank.
        peer: u32,
        /// Modeled wire bytes.
        bytes: f64,
    },
    /// Outcome of a nonblocking wait batch (instant): how much of the
    /// posted transfers' wire time ran concurrently with compute charged
    /// between post and wait (`hidden`) versus stalling the receiver at the
    /// wait point (`exposed`). The rollup sums these to show how much
    /// communication the overlapped solver paths actually hide.
    Overlap {
        /// Messages completed by the wait.
        msgs: u32,
        /// Transfer seconds hidden behind compute.
        hidden: f64,
        /// Seconds the receiver stalled at the wait point.
        exposed: f64,
    },
    /// Krylov iteration count of one time-step's solve (instant).
    Solver {
        /// Absolute time-step index.
        step: u32,
        /// Krylov iterations spent in this step.
        iters: u32,
    },
    /// A checkpoint became durable (instant, stamped after the I/O charge).
    Checkpoint {
        /// Absolute time-step index the snapshot covers.
        step: u32,
        /// Serialized snapshot size charged to the I/O model.
        bytes: f64,
    },
    /// A node was revoked / crashed (instant, campaign timeline).
    Revocation {
        /// Topology node id.
        node: u32,
    },
    /// The campaign rolled back to its last durable checkpoint (instant).
    Rollback {
        /// Step index the campaign resumed from.
        to_step: u32,
        /// Virtual seconds of work discarded by the rollback.
        lost_seconds: f64,
    },
    /// A (re)started attempt began executing (instant, campaign timeline).
    AttemptStart {
        /// 1-based attempt number.
        attempt: u32,
    },
    /// Dollars charged to an account (instant; an expense *delta*).
    Expense {
        /// Billing account (`"fleet"`, `"wait"`, ...).
        account: &'static str,
        /// Dollars charged.
        dollars: f64,
    },
    /// Virtual seconds attributed to a campaign accounting bucket
    /// (instant; the buckets reproduce the recovery accounting identity).
    TimeAccount {
        /// Accounting bucket (`"compute"`, `"lost_work"`, ...).
        account: &'static str,
        /// Seconds attributed.
        seconds: f64,
    },
}

/// Synthetic rank id used for campaign-level events (attempt starts,
/// revocations, expense deltas) that no simulated rank emitted.
pub const CAMPAIGN_RANK: u32 = u32::MAX;

/// One recorded event: virtual timestamp, duration (0 for instants), the
/// emitting rank, a per-rank monotonic sequence number, and the kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Virtual start time, seconds.
    pub at: f64,
    /// Virtual duration, seconds (0 for instants).
    pub dur: f64,
    /// Emitting rank ([`CAMPAIGN_RANK`] for campaign-level events).
    pub rank: u32,
    /// Per-rank monotonic sequence number; makes the sort key total.
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Total order on events: `(at, rank, seq)` with `total_cmp` on the
/// timestamp so the comparison is a total order even if a NaN ever slipped
/// in. Wall clock never participates.
pub fn cmp_events(a: &TraceEvent, b: &TraceEvent) -> std::cmp::Ordering {
    a.at.total_cmp(&b.at)
        .then_with(|| a.rank.cmp(&b.rank))
        .then_with(|| a.seq.cmp(&b.seq))
}
