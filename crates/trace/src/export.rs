//! Trace exporters: JSONL and Chrome `trace_event` JSON.
//!
//! Both formats are emitted with hand-rolled, dependency-free writers so
//! the byte stream is a pure function of the event list: floats print via
//! Rust's shortest-round-trip `Display` (deterministic across platforms),
//! object keys are written in a fixed order, and nothing ever consults the
//! wall clock or the environment.

use crate::event::{EventKind, TraceEvent, CAMPAIGN_RANK};
use std::fmt::Write;

/// Writes `x` as a JSON number (floats are finite throughout the stack; a
/// non-finite value would be a bug, surfaced as `null` rather than invalid
/// JSON).
fn num(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

fn common_prefix(out: &mut String, e: &TraceEvent) {
    out.push_str("{\"at\":");
    num(out, e.at);
    out.push_str(",\"dur\":");
    num(out, e.dur);
    out.push_str(",\"rank\":");
    if e.rank == CAMPAIGN_RANK {
        out.push_str("\"campaign\"");
    } else {
        let _ = write!(out, "{}", e.rank);
    }
}

fn kind_fields(out: &mut String, kind: &EventKind) {
    match kind {
        EventKind::Phase { phase, step } => {
            let _ = write!(
                out,
                ",\"ev\":\"phase\",\"phase\":\"{}\",\"step\":{step}",
                phase.name()
            );
        }
        EventKind::Collective { op, bytes } => {
            let _ = write!(out, ",\"ev\":\"collective\",\"op\":\"{op}\",\"bytes\":");
            num(out, *bytes);
        }
        EventKind::SendMsg { peer, bytes } => {
            let _ = write!(out, ",\"ev\":\"send\",\"peer\":{peer},\"bytes\":");
            num(out, *bytes);
        }
        EventKind::RecvMsg { peer, bytes } => {
            let _ = write!(out, ",\"ev\":\"recv\",\"peer\":{peer},\"bytes\":");
            num(out, *bytes);
        }
        EventKind::Overlap {
            msgs,
            hidden,
            exposed,
        } => {
            let _ = write!(out, ",\"ev\":\"overlap\",\"msgs\":{msgs},\"hidden\":");
            num(out, *hidden);
            out.push_str(",\"exposed\":");
            num(out, *exposed);
        }
        EventKind::Solver { step, iters } => {
            let _ = write!(out, ",\"ev\":\"solver\",\"step\":{step},\"iters\":{iters}");
        }
        EventKind::Checkpoint { step, bytes } => {
            let _ = write!(out, ",\"ev\":\"checkpoint\",\"step\":{step},\"bytes\":");
            num(out, *bytes);
        }
        EventKind::Revocation { node } => {
            let _ = write!(out, ",\"ev\":\"revocation\",\"node\":{node}");
        }
        EventKind::Rollback {
            to_step,
            lost_seconds,
        } => {
            let _ = write!(
                out,
                ",\"ev\":\"rollback\",\"to_step\":{to_step},\"lost_seconds\":"
            );
            num(out, *lost_seconds);
        }
        EventKind::AttemptStart { attempt } => {
            let _ = write!(out, ",\"ev\":\"attempt\",\"attempt\":{attempt}");
        }
        EventKind::Expense { account, dollars } => {
            let _ = write!(
                out,
                ",\"ev\":\"expense\",\"account\":\"{account}\",\"dollars\":"
            );
            num(out, *dollars);
        }
        EventKind::TimeAccount { account, seconds } => {
            let _ = write!(
                out,
                ",\"ev\":\"time\",\"account\":\"{account}\",\"seconds\":"
            );
            num(out, *seconds);
        }
    }
}

/// One JSON object per event, one event per line, trailing newline.
pub fn jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for e in events {
        common_prefix(&mut out, e);
        kind_fields(&mut out, &e.kind);
        out.push_str("}\n");
    }
    out
}

/// Display name of an event in the Chrome trace viewer.
fn chrome_name(kind: &EventKind) -> String {
    match kind {
        EventKind::Phase { phase, .. } => phase.name().to_string(),
        EventKind::Collective { op, .. } => op.to_string(),
        EventKind::SendMsg { peer, .. } => format!("send->{peer}"),
        EventKind::RecvMsg { peer, .. } => format!("recv<-{peer}"),
        EventKind::Overlap { msgs, .. } => format!("overlap({msgs})"),
        EventKind::Solver { .. } => "krylov".to_string(),
        EventKind::Checkpoint { .. } => "checkpoint".to_string(),
        EventKind::Revocation { node } => format!("revocation(node {node})"),
        EventKind::Rollback { .. } => "rollback".to_string(),
        EventKind::AttemptStart { attempt } => format!("attempt {attempt}"),
        EventKind::Expense { account, .. } => format!("$ {account}"),
        EventKind::TimeAccount { account, .. } => format!("t {account}"),
    }
}

fn chrome_category(kind: &EventKind) -> &'static str {
    match kind {
        EventKind::Phase { .. } => "phase",
        EventKind::Collective { .. } => "collective",
        EventKind::SendMsg { .. } | EventKind::RecvMsg { .. } | EventKind::Overlap { .. } => "p2p",
        EventKind::Solver { .. } => "solver",
        EventKind::Checkpoint { .. }
        | EventKind::Revocation { .. }
        | EventKind::Rollback { .. }
        | EventKind::AttemptStart { .. } => "fault",
        EventKind::Expense { .. } | EventKind::TimeAccount { .. } => "expense",
    }
}

/// Chrome `trace_event` JSON: complete (`"X"`) events for spans, instant
/// (`"i"`) events otherwise; timestamps in microseconds of virtual time;
/// one `tid` per rank. Loads directly in `about://tracing` and Perfetto.
pub fn chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 160 + 64);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for e in events {
        if !first {
            out.push(',');
        }
        first = false;
        let span = e.dur > 0.0;
        out.push_str("{\"name\":\"");
        out.push_str(&chrome_name(&e.kind));
        out.push_str("\",\"cat\":\"");
        out.push_str(chrome_category(&e.kind));
        out.push_str("\",\"ph\":\"");
        out.push_str(if span { "X" } else { "i" });
        out.push_str("\",\"ts\":");
        num(&mut out, e.at * 1e6);
        if span {
            out.push_str(",\"dur\":");
            num(&mut out, e.dur * 1e6);
        } else {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"pid\":0,\"tid\":");
        let _ = write!(out, "{}", e.rank);
        out.push_str(",\"args\":");
        args_json(&mut out, &e.kind);
        out.push('}');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

fn args_json(out: &mut String, kind: &EventKind) {
    match kind {
        EventKind::Phase { step, .. } => {
            let _ = write!(out, "{{\"step\":{step}}}");
        }
        EventKind::Collective { bytes, .. }
        | EventKind::SendMsg { bytes, .. }
        | EventKind::RecvMsg { bytes, .. } => {
            out.push_str("{\"bytes\":");
            num(out, *bytes);
            out.push('}');
        }
        EventKind::Overlap {
            msgs,
            hidden,
            exposed,
        } => {
            let _ = write!(out, "{{\"msgs\":{msgs},\"hidden\":");
            num(out, *hidden);
            out.push_str(",\"exposed\":");
            num(out, *exposed);
            out.push('}');
        }
        EventKind::Solver { step, iters } => {
            let _ = write!(out, "{{\"step\":{step},\"iters\":{iters}}}");
        }
        EventKind::Checkpoint { step, bytes } => {
            let _ = write!(out, "{{\"step\":{step},\"bytes\":");
            num(out, *bytes);
            out.push('}');
        }
        EventKind::Revocation { node } => {
            let _ = write!(out, "{{\"node\":{node}}}");
        }
        EventKind::Rollback {
            to_step,
            lost_seconds,
        } => {
            let _ = write!(out, "{{\"to_step\":{to_step},\"lost_seconds\":");
            num(out, *lost_seconds);
            out.push('}');
        }
        EventKind::AttemptStart { attempt } => {
            let _ = write!(out, "{{\"attempt\":{attempt}}}");
        }
        EventKind::Expense { dollars, .. } => {
            out.push_str("{\"dollars\":");
            num(out, *dollars);
            out.push('}');
        }
        EventKind::TimeAccount { seconds, .. } => {
            out.push_str("{\"seconds\":");
            num(out, *seconds);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                at: 0.25,
                dur: 0.5,
                rank: 0,
                seq: 0,
                kind: EventKind::Phase {
                    phase: Phase::Assembly,
                    step: 1,
                },
            },
            TraceEvent {
                at: 0.75,
                dur: 0.0,
                rank: 1,
                seq: 0,
                kind: EventKind::Solver { step: 1, iters: 12 },
            },
            TraceEvent {
                at: 1.0,
                dur: 0.0,
                rank: CAMPAIGN_RANK,
                seq: 0,
                kind: EventKind::Expense {
                    account: "fleet",
                    dollars: 0.125,
                },
            },
        ]
    }

    #[test]
    fn jsonl_is_one_parseable_object_per_line() {
        let text = jsonl(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON");
            assert!(v.get("at").and_then(|x| x.as_f64()).is_some());
        }
        assert!(lines[0].contains("\"phase\":\"assembly\""));
        assert!(lines[2].contains("\"rank\":\"campaign\""));
    }

    #[test]
    fn chrome_json_parses_and_has_span_and_instant_phases() {
        let text = chrome_json(&sample());
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[0].get("ph").and_then(|p| p.as_str()),
            Some("X"),
            "span event must be a complete event"
        );
        assert_eq!(events[1].get("ph").and_then(|p| p.as_str()), Some("i"));
        // Microsecond timestamps of virtual time.
        assert_eq!(events[0].get("ts").and_then(|t| t.as_f64()), Some(250000.0));
        assert_eq!(
            events[0].get("dur").and_then(|t| t.as_f64()),
            Some(500000.0)
        );
    }

    #[test]
    fn export_is_deterministic() {
        let a = sample();
        assert_eq!(jsonl(&a), jsonl(&a.clone()));
        assert_eq!(chrome_json(&a), chrome_json(&a.clone()));
    }
}
