//! # hetero-trace
//!
//! Deterministic, virtual-clock-stamped structured tracing and metrics for
//! the hetero-hpc stack.
//!
//! Every event is stamped with the emitting rank's *virtual* clock, so a
//! trace is a pure function of `(program, platform models, seed)` —
//! byte-identical across host thread counts and host machines. Events are
//! merged in `(virtual time, rank, per-rank sequence)` order; wall clock
//! never participates.
//!
//! The pieces:
//! - [`event`]: the event vocabulary ([`TraceEvent`], [`EventKind`],
//!   [`Phase`]) — `Copy` records, no heap payloads.
//! - [`sink`]: recording plumbing — per-rank [`RankTracer`] staging
//!   buffers (preallocated, drained at barriers and on overflow) feeding a
//!   shared [`TraceSink`]; [`Trace`] is the merged result. When tracing is
//!   off the communicator holds no tracer, so the disabled path is one
//!   `Option` check.
//! - [`metrics`]: [`MetricsRegistry`] — monotonic counters + fixed-bucket
//!   histograms derived from a finished trace (zero recording overhead).
//! - [`export`]: JSONL and Chrome `trace_event` JSON writers
//!   (deterministic bytes; the latter opens in `about://tracing` or
//!   Perfetto).
//! - [`rollup`]: [`PhaseRollup`] — reduces phase spans back to the
//!   paper's per-iteration assembly/precond/solve/total numbers with the
//!   report pipeline's exact operation order.

pub mod event;
pub mod export;
pub mod metrics;
pub mod rollup;
pub mod sink;

pub use event::{cmp_events, EventKind, Phase, TraceEvent, CAMPAIGN_RANK};
pub use metrics::{Histogram, MetricsRegistry};
pub use rollup::{rollup as phase_rollup, PhaseRollup};
pub use sink::{RankTracer, Trace, TraceDetail, TraceSink, TraceSpec};
