//! Metrics registry: monotonic counters and fixed-bucket histograms.
//!
//! The registry is *derived* from a finished trace rather than updated on
//! the recording hot path, so metrics cost nothing while ranks run and are
//! trivially deterministic: `BTreeMap` keys give a stable iteration order
//! and every value is a fold over the already-ordered event list.

use crate::event::{EventKind, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Fixed bucket bounds (upper edges, seconds) for phase-duration
/// histograms: 100 µs to 100 s, decade-spaced.
pub const SECONDS_BUCKETS: &[f64] = &[1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0];
/// Fixed bucket bounds (upper edges, bytes) for volume histograms:
/// 1 KiB to 1 GiB, ~decade-spaced.
pub const BYTES_BUCKETS: &[f64] = &[1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9];
/// Fixed bucket bounds for per-step Krylov iteration counts.
pub const ITERS_BUCKETS: &[f64] = &[5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0];

/// A fixed-bucket histogram (cumulative-style buckets plus an overflow
/// bucket, a count, and a sum — enough to recover means and tails).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: &'static [f64],
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// An empty histogram over `bounds` (upper bucket edges, ascending;
    /// one extra overflow bucket is appended).
    pub fn new(bounds: &'static [f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, x: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| x <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += x;
    }

    /// Upper bucket edges.
    pub fn bounds(&self) -> &[f64] {
        self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Monotonic counters and fixed-bucket histograms keyed by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` (must be >= 0: counters are monotonic) to counter `name`.
    pub fn add(&mut self, name: &str, v: f64) {
        debug_assert!(v >= 0.0, "counters are monotonic; got {v} for {name}");
        *self.counters.entry(name.to_string()).or_insert(0.0) += v;
    }

    /// Records `x` into histogram `name`, creating it over `bounds` on
    /// first use.
    pub fn observe(&mut self, name: &str, bounds: &'static [f64], x: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(x);
    }

    /// Counter value (0 when never touched).
    pub fn counter(&self, name: &str) -> f64 {
        self.counters.get(name).copied().unwrap_or(0.0)
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, f64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Derives the registry from an ordered event list.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut m = MetricsRegistry::new();
        for e in events {
            match e.kind {
                EventKind::Phase { phase, .. } => {
                    m.add(&format!("phase.{}.seconds_total", phase.name()), e.dur);
                    m.observe(
                        &format!("phase.{}.seconds", phase.name()),
                        SECONDS_BUCKETS,
                        e.dur,
                    );
                }
                EventKind::Collective { op, bytes } => {
                    m.add(&format!("comm.{op}.calls"), 1.0);
                    m.add(&format!("comm.{op}.bytes"), bytes);
                    m.add(&format!("comm.{op}.seconds_total"), e.dur);
                    m.observe(&format!("comm.{op}.bytes_per_call"), BYTES_BUCKETS, bytes);
                }
                EventKind::SendMsg { bytes, .. } => {
                    m.add("comm.p2p.msgs", 1.0);
                    m.add("comm.p2p.bytes", bytes);
                }
                EventKind::RecvMsg { .. } => {
                    m.add("comm.p2p.recv_wait_seconds", e.dur);
                }
                EventKind::Overlap {
                    msgs,
                    hidden,
                    exposed,
                } => {
                    m.add("comm.overlap.waits", 1.0);
                    m.add("comm.overlap.msgs", f64::from(msgs));
                    m.add("comm.overlap.hidden_seconds", hidden);
                    m.add("comm.overlap.exposed_seconds", exposed);
                }
                EventKind::Solver { iters, .. } => {
                    m.add("solver.krylov_iters", f64::from(iters));
                    m.observe("solver.iters_per_step", ITERS_BUCKETS, f64::from(iters));
                }
                EventKind::Checkpoint { bytes, .. } => {
                    m.add("checkpoint.commits", 1.0);
                    m.add("checkpoint.bytes", bytes);
                    m.observe("checkpoint.bytes_per_commit", BYTES_BUCKETS, bytes);
                }
                EventKind::Revocation { .. } => {
                    m.add("fault.revocations", 1.0);
                }
                EventKind::Rollback { lost_seconds, .. } => {
                    m.add("fault.rollbacks", 1.0);
                    m.add("fault.lost_work_seconds", lost_seconds);
                    m.observe(
                        "fault.lost_work_per_rollback",
                        SECONDS_BUCKETS,
                        lost_seconds,
                    );
                }
                EventKind::AttemptStart { .. } => {
                    m.add("campaign.attempts", 1.0);
                }
                EventKind::Expense { account, dollars } => {
                    m.add(&format!("expense.{account}.dollars"), dollars);
                    m.add("expense.total_dollars", dollars);
                }
                EventKind::TimeAccount { account, seconds } => {
                    m.add(&format!("time.{account}.seconds"), seconds);
                }
            }
        }
        m
    }

    /// Stable plain-text rendering (counters then histograms, name order).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter {name} = {v}");
        }
        for (name, h) in &self.histograms {
            let _ = write!(out, "histogram {name}: count={} sum={}", h.count, h.sum);
            let _ = write!(out, " buckets=[");
            for (i, c) in h.counts.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                let _ = write!(out, "{c}");
            }
            out.push_str("]\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        for x in [0.5, 1.0, 5.0, 100.0] {
            h.observe(x);
        }
        assert_eq!(h.bucket_counts(), &[2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 106.5).abs() < 1e-12);
    }

    #[test]
    fn registry_derives_from_events() {
        let events = vec![
            TraceEvent {
                at: 0.0,
                dur: 0.25,
                rank: 0,
                seq: 0,
                kind: EventKind::Phase {
                    phase: Phase::Solve,
                    step: 0,
                },
            },
            TraceEvent {
                at: 0.25,
                dur: 0.0,
                rank: 0,
                seq: 1,
                kind: EventKind::Solver { step: 0, iters: 17 },
            },
            TraceEvent {
                at: 0.25,
                dur: 0.01,
                rank: 0,
                seq: 2,
                kind: EventKind::Collective {
                    op: "reduce",
                    bytes: 72.0,
                },
            },
        ];
        let m = MetricsRegistry::from_events(&events);
        assert_eq!(m.counter("solver.krylov_iters"), 17.0);
        assert_eq!(m.counter("comm.reduce.calls"), 1.0);
        assert_eq!(m.counter("comm.reduce.bytes"), 72.0);
        assert_eq!(m.counter("phase.solve.seconds_total"), 0.25);
        let h = m.histogram("solver.iters_per_step").unwrap();
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn render_text_is_stable_name_order() {
        let mut m = MetricsRegistry::new();
        m.add("zeta", 1.0);
        m.add("alpha", 2.0);
        let text = m.render_text();
        let a = text.find("alpha").unwrap();
        let z = text.find("zeta").unwrap();
        assert!(a < z);
    }
}
