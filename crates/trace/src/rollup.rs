//! Per-phase rollup: reduces phase spans back to the paper's numbers.
//!
//! The reduction mirrors the report pipeline *operation for operation* so
//! the rollup of a run's trace equals the run's reported [`assembly`,
//! `precond`, `solve`, `total`] bitwise: per-step phase durations are
//! accumulated per rank in that rank's chronological segment order (the
//! same order `fem::phase::PhaseRecorder` adds them), reduced across ranks
//! with `f64::max` (the critical rank), then the first `discard` steps are
//! dropped and the rest averaged by summing in step order and multiplying
//! by `1/n` — exactly `fem::phase::summarize`.
//!
//! [`assembly`]: PhaseRollup::assembly
//! [`precond`]: PhaseRollup::precond
//! [`solve`]: PhaseRollup::solve
//! [`total`]: PhaseRollup::total

use crate::event::{EventKind, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Mean per-iteration critical-rank phase times recovered from a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseRollup {
    /// Iterations that survived the discard and were averaged.
    pub steps: usize,
    /// Warm-up iterations dropped before averaging.
    pub discard: usize,
    /// Mean assembly seconds per iteration (critical rank).
    pub assembly: f64,
    /// Mean preconditioner seconds per iteration.
    pub precond: f64,
    /// Mean Krylov-solve seconds per iteration.
    pub solve: f64,
    /// Mean seconds per iteration spent outside the three named phases.
    pub other: f64,
    /// Mean whole-iteration seconds (the paper's "total maximal iteration
    /// time").
    pub total: f64,
}

/// Engineering-notation seconds for the rollup table.
fn fmt_seconds(s: f64) -> String {
    let a = s.abs();
    if a == 0.0 {
        "0 s".to_string()
    } else if a < 1e-3 {
        format!("{:.3} µs", s * 1e6)
    } else if a < 1.0 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

impl PhaseRollup {
    /// Renders the per-phase table (Fig. 4's assembly/precond/solve split
    /// plus the remainder), with each phase's share of the iteration.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "per-iteration phase rollup ({} iterations, first {} discarded)",
            self.steps, self.discard
        );
        let _ = writeln!(out, "  {:<10} {:>14} {:>8}", "phase", "mean/iter", "share");
        let share = |x: f64| {
            if self.total > 0.0 {
                format!("{:.1}%", 100.0 * x / self.total)
            } else {
                "-".to_string()
            }
        };
        for (name, val) in [
            ("assembly", self.assembly),
            ("precond", self.precond),
            ("solve", self.solve),
            ("other", self.other),
        ] {
            let _ = writeln!(
                out,
                "  {:<10} {:>14} {:>8}",
                name,
                fmt_seconds(val),
                share(val)
            );
        }
        let _ = writeln!(
            out,
            "  {:<10} {:>14} {:>8}",
            "total",
            fmt_seconds(self.total),
            "100.0%"
        );
        out
    }
}

/// Reduces the phase spans of `events` to mean per-iteration critical-rank
/// times, discarding the first `discard` iterations. Returns `None` when no
/// iteration survives.
pub fn rollup(events: &[TraceEvent], discard: usize) -> Option<PhaseRollup> {
    // (step, rank) -> per-phase accumulated seconds, in the rank's own
    // chronological segment order (events are sorted by (at, rank, seq), so
    // the subsequence of one rank is chronological).
    let mut acc: BTreeMap<(u32, u32), [f64; 5]> = BTreeMap::new();
    for e in events {
        if let EventKind::Phase { phase, step } = e.kind {
            acc.entry((step, e.rank)).or_insert([0.0; 5])[phase.index()] += e.dur;
        }
    }
    if acc.is_empty() {
        return None;
    }
    // Critical-rank reduction: element-wise max over ranks, per step.
    // BTreeMap iteration yields (step, rank) ascending, so steps come out
    // grouped and in order.
    let mut per_step: Vec<[f64; 5]> = Vec::new();
    let mut cur_step: Option<u32> = None;
    let mut cur = [0.0f64; 5];
    for ((step, _rank), v) in &acc {
        if cur_step != Some(*step) {
            if cur_step.is_some() {
                per_step.push(cur);
            }
            cur_step = Some(*step);
            cur = [0.0; 5];
        }
        for (c, x) in cur.iter_mut().zip(v) {
            *c = c.max(*x);
        }
    }
    per_step.push(cur);

    // The paper's discard-and-average, with `summarize`'s exact operation
    // order: sum in step order, multiply by the reciprocal.
    let kept = per_step.get(discard.min(per_step.len())..)?;
    if kept.is_empty() {
        return None;
    }
    let mut sum = [0.0f64; 5];
    for step in kept {
        for (s, x) in sum.iter_mut().zip(step) {
            *s += x;
        }
    }
    let scale = 1.0 / kept.len() as f64;
    Some(PhaseRollup {
        steps: kept.len(),
        discard,
        assembly: sum[0] * scale,
        precond: sum[1] * scale,
        solve: sum[2] * scale,
        other: sum[3] * scale,
        total: sum[4] * scale,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;

    fn span(at: f64, dur: f64, rank: u32, seq: u64, phase: Phase, step: u32) -> TraceEvent {
        TraceEvent {
            at,
            dur,
            rank,
            seq,
            kind: EventKind::Phase { phase, step },
        }
    }

    #[test]
    fn rollup_takes_critical_rank_then_averages() {
        // Two ranks, two steps; rank 1 is slower in assembly, rank 0 in
        // solve. The rollup must take the max per phase per step.
        let events = vec![
            span(0.0, 1.0, 0, 0, Phase::Assembly, 1),
            span(0.0, 2.0, 1, 0, Phase::Assembly, 1),
            span(2.0, 3.0, 0, 1, Phase::Solve, 1),
            span(2.0, 1.0, 1, 1, Phase::Solve, 1),
            span(0.0, 5.0, 0, 2, Phase::Iteration, 1),
            span(0.0, 5.0, 1, 2, Phase::Iteration, 1),
            span(5.0, 4.0, 0, 3, Phase::Assembly, 2),
            span(5.0, 2.0, 1, 3, Phase::Assembly, 2),
            span(9.0, 1.0, 0, 4, Phase::Solve, 2),
            span(9.0, 1.0, 1, 4, Phase::Solve, 2),
            span(5.0, 7.0, 0, 5, Phase::Iteration, 2),
            span(5.0, 6.0, 1, 5, Phase::Iteration, 2),
        ];
        let r = rollup(&events, 0).unwrap();
        assert_eq!(r.steps, 2);
        assert_eq!(r.assembly, (2.0 + 4.0) / 2.0);
        assert_eq!(r.solve, (3.0 + 1.0) / 2.0);
        assert_eq!(r.total, (5.0 + 7.0) / 2.0);
    }

    #[test]
    fn rollup_discards_warmup_steps() {
        let events = vec![
            span(0.0, 100.0, 0, 0, Phase::Solve, 1),
            span(0.0, 100.0, 0, 1, Phase::Iteration, 1),
            span(100.0, 1.0, 0, 2, Phase::Solve, 2),
            span(100.0, 1.0, 0, 3, Phase::Iteration, 2),
        ];
        let r = rollup(&events, 1).unwrap();
        assert_eq!(r.steps, 1);
        assert_eq!(r.solve, 1.0);
        assert!(rollup(&events, 5).is_none());
        assert!(rollup(&[], 0).is_none());
    }

    #[test]
    fn repeated_segments_accumulate_like_the_recorder() {
        // NS interleaves assembly/solve segments within one step.
        let events = vec![
            span(0.0, 1.0, 0, 0, Phase::Assembly, 1),
            span(1.0, 2.0, 0, 1, Phase::Solve, 1),
            span(3.0, 0.5, 0, 2, Phase::Assembly, 1),
            span(3.5, 1.5, 0, 3, Phase::Solve, 1),
            span(0.0, 5.0, 0, 4, Phase::Iteration, 1),
        ];
        let r = rollup(&events, 0).unwrap();
        assert_eq!(r.assembly, 1.5);
        assert_eq!(r.solve, 3.5);
        assert_eq!(r.total, 5.0);
    }

    #[test]
    fn render_mentions_every_phase() {
        let events = vec![
            span(0.0, 1.0, 0, 0, Phase::Assembly, 1),
            span(1.0, 3.0, 0, 1, Phase::Solve, 1),
            span(0.0, 4.0, 0, 2, Phase::Iteration, 1),
        ];
        let text = rollup(&events, 0).unwrap().render();
        for phase in ["assembly", "precond", "solve", "other", "total"] {
            assert!(text.contains(phase), "missing {phase} in:\n{text}");
        }
    }
}
