//! Recording plumbing: per-rank staging buffers draining into a shared
//! sink, and the merged [`Trace`] they produce.
//!
//! The hot path is [`RankTracer::record`]: one bounds check and a `Vec`
//! push into a buffer preallocated at its full capacity, so steady-state
//! recording allocates nothing. Buffers drain into the sink when full and
//! at barriers; the sink merges drained batches under a mutex that is
//! touched only at drain time, never per event. When tracing is off the
//! communicator holds no tracer at all, so the disabled path is a single
//! `Option` test.

use crate::event::{cmp_events, EventKind, TraceEvent};
use crate::export;
use crate::metrics::MetricsRegistry;
use crate::rollup::{rollup, PhaseRollup};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// How much of the stack to record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TraceDetail {
    /// FEM phase spans, solver counts, and fault/recovery/expense events.
    Phases,
    /// `Phases` plus one span per collective operation.
    Collectives,
    /// `Collectives` plus every point-to-point message. Verbose: a Krylov
    /// solve emits two events per halo exchange per iteration.
    Messages,
}

/// Tracing configuration carried by a run request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// Recording granularity.
    pub detail: TraceDetail,
    /// Per-rank staging-buffer capacity, in events. Buffers drain to the
    /// shared sink when full (and at barriers), so this bounds per-rank
    /// memory, not trace length.
    pub buffer_events: usize,
}

impl TraceSpec {
    /// Phase-level tracing (the cheapest useful granularity).
    pub fn phases() -> Self {
        TraceSpec {
            detail: TraceDetail::Phases,
            ..Self::default()
        }
    }

    /// Phase + collective tracing (the default).
    pub fn collectives() -> Self {
        Self::default()
    }

    /// Everything, including per-message point-to-point events.
    pub fn messages() -> Self {
        TraceSpec {
            detail: TraceDetail::Messages,
            ..Self::default()
        }
    }
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            detail: TraceDetail::Collectives,
            buffer_events: 4096,
        }
    }
}

/// The shared collection point all ranks drain into. One per traced run.
pub struct TraceSink {
    spec: TraceSpec,
    merged: Mutex<Vec<TraceEvent>>,
}

impl TraceSink {
    /// Creates a sink for one traced run.
    pub fn new(spec: TraceSpec) -> Arc<Self> {
        Arc::new(TraceSink {
            spec,
            merged: Mutex::new(Vec::new()),
        })
    }

    /// The spec this sink was created with.
    pub fn spec(&self) -> TraceSpec {
        self.spec
    }

    /// Moves a rank's staged events into the sink, leaving the staging
    /// buffer empty but with its capacity intact.
    pub fn absorb(&self, staged: &mut Vec<TraceEvent>) {
        if staged.is_empty() {
            return;
        }
        let mut merged = self
            .merged
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        merged.append(staged);
    }

    /// Consumes the sink and produces the merged, deterministically ordered
    /// trace. Call after every rank has drained (the engine drops each
    /// rank's tracer before joining its thread).
    pub fn finish(self: Arc<Self>) -> Trace {
        let mut events = match Arc::try_unwrap(self) {
            Ok(sink) => sink.merged.into_inner(),
            Err(arc) => {
                let mut guard = arc
                    .merged
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                Ok(std::mem::take(&mut *guard))
            }
        }
        .unwrap_or_else(std::sync::PoisonError::into_inner);
        events.sort_by(cmp_events);
        Trace { events }
    }
}

/// One rank's recording handle: a fixed-capacity staging buffer plus the
/// per-rank sequence counter that makes the global sort key total.
pub struct RankTracer {
    rank: u32,
    seq: u64,
    detail: TraceDetail,
    /// Staging-buffer capacity in events. Kept separately from
    /// `staged.capacity()` so the buffer can start unallocated: with tens of
    /// thousands of ranks, eagerly preallocating 4096 events per rank costs
    /// hundreds of megabytes before a single event is recorded.
    cap: usize,
    staged: Vec<TraceEvent>,
    sink: Arc<TraceSink>,
}

impl RankTracer {
    /// Creates the tracer for `rank`. The staging buffer is allocated lazily
    /// on the first [`Self::record`], so idle tracers cost nothing.
    pub fn new(rank: u32, sink: Arc<TraceSink>) -> Self {
        let spec = sink.spec();
        RankTracer {
            rank,
            seq: 0,
            detail: spec.detail,
            cap: spec.buffer_events.max(16),
            staged: Vec::new(),
            sink,
        }
    }

    /// Recording granularity (copied out of the spec so the check is a
    /// register compare, not a pointer chase).
    #[inline]
    pub fn detail(&self) -> TraceDetail {
        self.detail
    }

    /// Records one event stamped at virtual time `at` lasting `dur`
    /// virtual seconds. Allocation-free until the buffer fills.
    #[inline]
    pub fn record(&mut self, at: f64, dur: f64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        if self.staged.capacity() == 0 {
            // First event: allocate the full staging buffer once, so
            // steady-state recording never reallocates.
            self.staged.reserve_exact(self.cap);
        } else if self.staged.len() == self.cap {
            // Drain *before* pushing at capacity so the push itself never
            // reallocates the staging buffer.
            self.sink.absorb(&mut self.staged);
        }
        self.staged.push(TraceEvent {
            at,
            dur,
            rank: self.rank,
            seq,
            kind,
        });
    }

    /// Drains the staging buffer into the sink. Called at barriers and on
    /// drop, so a rank that unwinds (fault, poison) still contributes the
    /// events it recorded before dying.
    pub fn flush(&mut self) {
        self.sink.absorb(&mut self.staged);
    }
}

impl Drop for RankTracer {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A merged, deterministically ordered trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Events sorted by `(virtual time, rank, per-rank seq)`.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Restores the canonical `(at, rank, seq)` order after edits.
    pub fn sort(&mut self) {
        self.events.sort_by(cmp_events);
    }

    /// Shifts every timestamp by `offset` virtual seconds (used to place an
    /// attempt's trace on the campaign timeline).
    pub fn shift(&mut self, offset: f64) {
        for e in &mut self.events {
            e.at += offset;
        }
    }

    /// Appends a campaign-level event (rank [`crate::event::CAMPAIGN_RANK`])
    /// with the next free sequence number for that rank. Call [`Self::sort`]
    /// once after the last push.
    pub fn push_campaign(&mut self, at: f64, kind: EventKind) {
        let rank = crate::event::CAMPAIGN_RANK;
        let seq = self
            .events
            .iter()
            .filter(|e| e.rank == rank)
            .map(|e| e.seq + 1)
            .max()
            .unwrap_or(0);
        self.events.push(TraceEvent {
            at,
            dur: 0.0,
            rank,
            seq,
            kind,
        });
    }

    /// Merges `other`'s events in and restores canonical order.
    pub fn merge(&mut self, other: Trace) {
        self.events.extend(other.events);
        self.sort();
    }

    /// One JSON object per line; byte-identical for byte-identical traces.
    pub fn jsonl(&self) -> String {
        export::jsonl(&self.events)
    }

    /// Chrome `trace_event` JSON (opens in `about://tracing` / Perfetto).
    pub fn chrome_json(&self) -> String {
        export::chrome_json(&self.events)
    }

    /// Derives the metrics registry (counters + histograms) from the
    /// recorded events.
    pub fn metrics(&self) -> MetricsRegistry {
        MetricsRegistry::from_events(&self.events)
    }

    /// Per-phase rollup reproducing the report's critical-rank +
    /// discard-and-average reduction. `None` if no complete iteration
    /// survives the discard.
    pub fn phase_rollup(&self, discard: usize) -> Option<PhaseRollup> {
        rollup(&self.events, discard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;

    #[test]
    fn record_and_finish_orders_by_virtual_time_then_rank() {
        let sink = TraceSink::new(TraceSpec::default());
        let mut t1 = RankTracer::new(1, sink.clone());
        let mut t0 = RankTracer::new(0, sink.clone());
        // Rank 1 records first in wall time, but its events sort by `at`.
        t1.record(
            2.0,
            0.5,
            EventKind::Phase {
                phase: Phase::Solve,
                step: 0,
            },
        );
        t0.record(
            1.0,
            0.5,
            EventKind::Phase {
                phase: Phase::Assembly,
                step: 0,
            },
        );
        t1.record(1.0, 0.0, EventKind::Solver { step: 0, iters: 3 });
        drop(t0);
        drop(t1);
        let trace = sink.finish();
        let order: Vec<(f64, u32, u64)> =
            trace.events.iter().map(|e| (e.at, e.rank, e.seq)).collect();
        assert_eq!(order, vec![(1.0, 0, 0), (1.0, 1, 1), (2.0, 1, 0)]);
    }

    #[test]
    fn staging_buffer_spills_without_losing_events() {
        let sink = TraceSink::new(TraceSpec {
            detail: TraceDetail::Messages,
            buffer_events: 16,
        });
        let mut t = RankTracer::new(0, sink.clone());
        for i in 0..100 {
            t.record(i as f64, 0.0, EventKind::Solver { step: i, iters: 1 });
        }
        drop(t);
        let trace = sink.finish();
        assert_eq!(trace.len(), 100);
        // Per-rank seq survives the spill and keeps the order total.
        for (i, e) in trace.events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn dropping_an_unwound_tracer_still_drains() {
        let sink = TraceSink::new(TraceSpec::default());
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut t = RankTracer::new(3, sink.clone());
            t.record(0.5, 0.0, EventKind::Revocation { node: 1 });
            panic!("simulated fault unwind");
        }));
        assert!(payload.is_err());
        let trace = sink.finish();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.events[0].rank, 3);
    }

    #[test]
    fn shift_and_campaign_push_keep_order_after_sort() {
        let sink = TraceSink::new(TraceSpec::default());
        let mut t = RankTracer::new(0, sink.clone());
        t.record(
            1.0,
            1.0,
            EventKind::Collective {
                op: "barrier",
                bytes: 64.0,
            },
        );
        drop(t);
        let mut trace = sink.finish();
        trace.shift(10.0);
        trace.push_campaign(5.0, EventKind::AttemptStart { attempt: 1 });
        trace.push_campaign(5.0, EventKind::Revocation { node: 0 });
        trace.sort();
        assert_eq!(trace.events[0].at, 5.0);
        assert!(matches!(
            trace.events[0].kind,
            EventKind::AttemptStart { attempt: 1 }
        ));
        assert_eq!(trace.events[1].seq, 1);
        assert_eq!(trace.events[2].at, 11.0);
    }
}
