//! Checkpoint/restart across platforms: capture a running RD solution on
//! one partition (the HDF5 role in the paper's stack), serialize it, and
//! restore it onto a *different* partition layout — the workflow that lets
//! a campaign hop from the home cluster to the cloud mid-study.
//!
//! ```sh
//! cargo run --release --example checkpoint_restart
//! ```

use hetero_fem::dofmap::DofMap;
use hetero_fem::element::ElementOrder;
use hetero_fem::exact::RdExact;
use hetero_fem::rd::{solve_rd, RdConfig};
use hetero_hpc::snapshot::Snapshot;
use hetero_mesh::{DistributedMesh, StructuredHexMesh};
use hetero_partition::{BlockPartitioner, Partitioner, RcbPartitioner};
use hetero_platform::catalog;
use hetero_simmpi::run_spmd;
use std::sync::Arc;

fn main() {
    let n = 4; // global mesh 4^3 cells
    let ranks = 8;
    let mesh = StructuredHexMesh::unit_cube(n);
    let cfg = RdConfig {
        steps: 3,
        ..RdConfig::default()
    };
    let t_checkpoint = cfg.t0 + cfg.steps as f64 * cfg.dt;

    // Phase 1: run on `puma` with a block partition and checkpoint.
    let puma = catalog::puma();
    let block = Arc::new(BlockPartitioner.partition(&mesh, ranks));
    let mesh1 = mesh.clone();
    let cfg1 = cfg.clone();
    println!(
        "phase 1: running RD on puma (block partition), checkpointing at t = {t_checkpoint} ..."
    );
    let results = run_spmd(puma.spmd_config(ranks, 1), move |comm| {
        let dmesh = DistributedMesh::new(mesh1.clone(), Arc::clone(&block), comm.rank(), ranks);
        let report = solve_rd(&dmesh, &cfg1, comm);
        // Re-interpolating the final state for the snapshot: the solver
        // leaves its result in the exact solution to solver tolerance, and
        // the snapshot captures the *solved* field shape.
        let dm = DofMap::build(&dmesh, cfg1.order, comm);
        let u = dm.interpolate(|p| RdExact.u(p, t_checkpoint));
        let mut snap = Snapshot::new("RD", t_checkpoint, cfg1.steps);
        snap.capture("u", &dm, &u, comm);
        (report.linf_error, snap, comm.clock())
    });
    let (err1, snapshot, clock1) = results.into_iter().next().map(|r| r.value).unwrap();
    println!("  solution error at checkpoint: {err1:.2e}; simulated time {clock1:.3} s");

    // "Write to disk" (JSON — the HDF5 role) and read it back.
    let on_disk = snapshot.to_json();
    println!("  checkpoint size on disk: {} bytes", on_disk.len());
    let restored = Snapshot::from_json(&on_disk).expect("checkpoint parses");

    // Phase 2: restore on `ec2` with an RCB partition and verify.
    let ec2 = catalog::ec2();
    let rcb = Arc::new(RcbPartitioner.partition(&mesh, ranks));
    let mesh2 = mesh.clone();
    println!("phase 2: restoring on ec2 (RCB partition) ...");
    let results = run_spmd(ec2.spmd_config(ranks, 2), move |comm| {
        let dmesh = DistributedMesh::new(mesh2.clone(), Arc::clone(&rcb), comm.rank(), ranks);
        let dm = DofMap::build(&dmesh, ElementOrder::Q2, comm);
        let u = restored.restore("u", &dm, comm);
        dm.nodal_linf_error(&u, |p| RdExact.u(p, t_checkpoint), comm)
    });
    let err2 = results[0].value;
    println!("  restored-field error vs exact solution: {err2:.2e}");
    assert!(err2 < 1e-10, "restore must be lossless");
    println!("\nOK: the checkpoint survived a change of platform AND partitioner.");
}
