//! Cloud vs cluster: reproduce the paper's headline comparison (Figures 4
//! and 6) at full paper scale — the RD weak-scaling ladder `1..=1000` ranks
//! with `20^3` elements per rank on all four platforms, with per-iteration
//! dollar costs.
//!
//! ```sh
//! cargo run --release --example cloud_vs_cluster
//! ```

use hetero_hpc::report::{render_cost_curves, render_weak_scaling};
use hetero_hpc::scenarios::{fig6, ScenarioOptions};

fn main() {
    let opts = ScenarioOptions::paper();
    println!(
        "RD weak scaling, {}^3 elements/rank, ranks 1..{}, {} iterations ({} discarded)\n",
        opts.per_rank_axis,
        opts.max_k.pow(3),
        opts.steps,
        opts.discard
    );
    let (table, curves) = fig6(&opts);
    println!("{}", render_weak_scaling(&table));
    println!("{}", render_cost_curves("RD", &curves));

    // The paper's qualitative findings, restated from the data:
    let ec2_small = table.outcome(8, "ec2").unwrap().phases.total;
    let puma_small = table.outcome(8, "puma").unwrap().phases.total;
    println!(
        "at 8 ranks, ec2 is {:.1}x faster than puma (newer CPUs)",
        puma_small / ec2_small
    );

    let lagrange_flat = table.outcome(343, "lagrange").unwrap().phases.total
        / table.outcome(1, "lagrange").unwrap().phases.total;
    let ec2_flat = table.outcome(343, "ec2").unwrap().phases.total
        / table.outcome(1, "ec2").unwrap().phases.total;
    println!(
        "weak-scaling degradation 1 -> 343 ranks: lagrange {lagrange_flat:.1}x, ec2 {ec2_flat:.1}x"
    );
    println!(
        "only ec2 reaches 1000 ranks: max feasible = puma {}, ellipse {}, lagrange {}, ec2 {}",
        table.max_feasible_ranks("puma"),
        table.max_feasible_ranks("ellipse"),
        table.max_feasible_ranks("lagrange"),
        table.max_feasible_ranks("ec2"),
    );
}
