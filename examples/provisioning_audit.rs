//! Provisioning audit: regenerate Table I (the platform capability matrix)
//! and the Section VI provisioning plans/effort totals, then characterize
//! each platform's "expense factor" for a realistic campaign.
//!
//! ```sh
//! cargo run --release --example provisioning_audit
//! ```

use hetero_hpc::apps::App;
use hetero_hpc::expense::{characterize, DEFAULT_ENGINEER_RATE_PER_HOUR};
use hetero_hpc::report::render_table1;
use hetero_hpc::scenarios::table1;
use hetero_platform::catalog;

fn main() {
    println!("{}", render_table1(&table1()));

    // Expense factors: what does a 64-rank NS campaign really cost on each
    // platform once provisioning effort and queue waits are counted?
    println!("\nExpense factors: NS at 64 ranks, 20^3 elements/rank");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>16} {:>16}",
        "platform", "s/iter", "$/iter", "effort h", "wait s", "$ (100 iters)", "$ (100k iters)"
    );
    for platform in catalog::all_platforms() {
        match characterize(&platform, App::paper_ns(3), 64, 20, 2012) {
            Ok(f) => {
                let r = DEFAULT_ENGINEER_RATE_PER_HOUR;
                println!(
                    "{:<10} {:>12.3} {:>12.4} {:>12.1} {:>12.0} {:>16.2} {:>16.2}",
                    f.platform,
                    f.seconds_per_iteration,
                    f.dollars_per_iteration,
                    f.provisioning_hours,
                    f.wait_seconds,
                    f.index(100, r),
                    f.index(100_000, r),
                );
            }
            Err(e) => println!("{:<10} infeasible: {e}", platform.key),
        }
    }
    println!(
        "\n(The home cluster wins short campaigns; the cloud's one-time day of\n\
         provisioning amortizes away on long ones — the paper's Section VIII tradeoff.)"
    );
}
