//! Quickstart: run the paper's reaction-diffusion benchmark on the "home"
//! cluster simulation, numerically, and print what the paper measures —
//! per-iteration phase times, dollars, and the exact-solution verification.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hetero_hpc::apps::App;
use hetero_hpc::report::outcome_phase_rollup;
use hetero_hpc::run::{execute, Fidelity, RunRequest};
use hetero_hpc::TraceSpec;
use hetero_platform::catalog;

fn main() {
    // 8 MPI ranks, each owning 4^3 elements of the cube, on the simulated
    // in-house cluster `puma` — small enough to execute the *real*
    // distributed FEM pipeline on threads. Tracing is on, so the outcome
    // also carries per-rank phase spans in virtual time.
    let req = RunRequest {
        fidelity: Fidelity::Numerical,
        discard: 1,
        trace: Some(TraceSpec::phases()),
        ..RunRequest::new(catalog::puma(), App::paper_rd(4), 8, 4)
    };

    println!(
        "running RD (Q2 elements, BDF2) on {} ...\n",
        req.platform.description
    );
    let out = execute(&req).expect("within puma's limits");

    println!("platform            : {}", out.platform);
    println!("ranks / nodes       : {} / {}", out.ranks, out.nodes);
    println!("engine              : {:?}", out.fidelity);
    println!(
        "assembly            : {:.4} s/iteration",
        out.phases.assembly
    );
    println!(
        "preconditioner      : {:.4} s/iteration",
        out.phases.precond
    );
    println!("solve               : {:.4} s/iteration", out.phases.solve);
    println!("total               : {:.4} s/iteration", out.phases.total);
    println!("CG iterations       : {:.1}", out.krylov_iters);
    println!(
        "cost                : ${:.6}/iteration",
        out.cost_per_iteration
    );
    println!("queue wait          : {:.0} s", out.queue_wait_seconds);

    let v = out.verification.expect("numerical runs verify");
    println!("\nverification against u = t^2 (x1^2 + x2^2 + x3^2):");
    println!("  max nodal error   : {:.2e}", v.linf);
    println!("  discrete L2 error : {:.2e}", v.l2);
    assert!(
        v.linf < 1e-5,
        "the Q2 + BDF2 discretization must be exact to solver tolerance"
    );

    // The Fig. 4 per-phase split, recomputed purely from the trace's span
    // records — it matches the reported numbers above bitwise.
    let rollup = outcome_phase_rollup(&out, req.discard).expect("tracing was requested");
    println!("\n{rollup}");
    println!("OK: the distributed pipeline reproduces the exact solution.");
}
