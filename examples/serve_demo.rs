//! Demo of the `hetero-serve` campaign service: a mixed hot/cold workload
//! over the paper's platform ladder, with per-submission latency and the
//! service counters.
//!
//! ```text
//! cargo run --release -p hetero-serve --example serve_demo
//! ```
//!
//! The demo opens a service on a temp directory, submits a small sweep of
//! RD campaigns twice (cold, then hot), repeats one resilient spot
//! campaign, and prints a latency table. The second pass is served from
//! the content-addressed cache at microsecond latency with byte-identical
//! outcomes — the multi-tenant shape of the paper's story, where a group
//! shares one harness and overlapping submissions repeat.

use hetero_fault::{FaultModel, SpotMarket};
use hetero_hpc::{App, Fidelity, ResilienceSpec, RunRequest};
use hetero_platform::catalog;
use hetero_serve::{ServeConfig, ServeHandle};
use std::time::Instant;

fn resilient_spot(seed: u64) -> RunRequest {
    let ec2 = catalog::ec2();
    let mut spec = ResilienceSpec::spot_with_restart(&ec2, 1.0, 1, 50);
    spec.faults = FaultModel {
        crashes: None,
        spot: Some(SpotMarket {
            epoch_seconds: 0.012,
            spike_probability: 0.35,
            ..SpotMarket::ec2_like(1.0)
        }),
        degradation: None,
    };
    RunRequest {
        fidelity: Fidelity::Numerical,
        seed,
        resilience: Some(spec),
        ..RunRequest::new(ec2, App::paper_rd(4), 8, 3)
    }
}

fn main() {
    let dir = std::env::temp_dir().join(format!("hetero-serve-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let serve = ServeHandle::open(ServeConfig::new(&dir).with_workers(2))
        .expect("service opens on a fresh directory");

    // The workload: the paper's RD app across three platforms, plus one
    // fault-injected resilient campaign on EC2 spot.
    let mut work: Vec<(String, RunRequest)> = [catalog::puma(), catalog::ellipse(), catalog::ec2()]
        .into_iter()
        .map(|p| {
            let label = format!("rd 8 ranks on {}", p.key);
            (label, RunRequest::new(p, App::paper_rd(3), 8, 3))
        })
        .collect();
    work.push(("resilient rd on ec2 spot".to_string(), resilient_spot(2012)));

    println!(
        "{:<28} {:>14} {:>14} {:>9}",
        "campaign", "cold", "hot", "speedup"
    );
    for (label, req) in &work {
        let t = Instant::now();
        let cold = serve.submit_wait(req).expect("job completes");
        let cold_us = t.elapsed().as_secs_f64() * 1e6;

        let t = Instant::now();
        let hot = serve.submit_wait(req).expect("cache hit");
        let hot_us = t.elapsed().as_secs_f64() * 1e6;

        let identical = serde_json::to_string(cold.as_ref()).expect("serializes")
            == serde_json::to_string(hot.as_ref()).expect("serializes");
        assert!(identical, "hot outcome must be byte-identical to cold");
        println!(
            "{label:<28} {:>12.0}us {:>12.1}us {:>8.0}x",
            cold_us,
            hot_us,
            cold_us / hot_us
        );
    }

    println!("\nservice counters:");
    let metrics = serve.metrics();
    let mut counters: Vec<(String, f64)> = metrics
        .counters()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, value) in counters {
        println!("  {name:<28} {value}");
    }

    serve.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
