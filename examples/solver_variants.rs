//! Prints the solve-phase comparison behind EXPERIMENTS.md's
//! "Communication overlap" table: modeled RD solve time per iteration for
//! the blocking, overlapped, and pipelined solver schedules on all four
//! platforms at 27 / 216 / 1000 ranks.
//!
//! The modeled engine is driven directly (not through `execute`) so the
//! what-if cells beyond a platform's real capacity — puma above 125 ranks,
//! ellipse above 512, lagrange above 343 — can still be evaluated: the
//! question is what the *interconnect* would do to each schedule, not
//! whether the machine room has the nodes.
//!
//! ```text
//! cargo run --release -p hetero-hpc --example solver_variants
//! ```

use hetero_fem::phase::summarize;
use hetero_hpc::modeled::run_modeled;
use hetero_hpc::App;
use hetero_linalg::SolverVariant;
use hetero_platform::catalog;
use hetero_simmpi::ClusterTopology;

fn main() {
    let platforms = [
        catalog::puma(),
        catalog::ellipse(),
        catalog::lagrange(),
        catalog::ec2(),
    ];
    let variants = [
        SolverVariant::Blocking,
        SolverVariant::Overlapped,
        SolverVariant::Pipelined,
    ];
    println!("RD solve phase, s/iteration (paper sizing: 20^3 elements/rank, seed 2012)");
    println!();
    println!("| platform | ranks | blocking | overlapped | pipelined | best saving |");
    println!("|----------|------:|---------:|-----------:|----------:|------------:|");
    for p in &platforms {
        for ranks in [27usize, 216, 1000] {
            let solve = |variant: SolverVariant| -> f64 {
                let app = App::paper_rd(4).with_solver_variant(variant);
                // Enough uniform nodes for the rank count, even where the
                // real platform tops out.
                let topo =
                    ClusterTopology::uniform(ranks.div_ceil(p.cores_per_node), p.cores_per_node);
                let m = run_modeled(&app, ranks, 20, &topo, &p.network, p.compute, 2012);
                summarize(&m.iterations, 1)
                    .expect("4 steps, 1 discarded")
                    .solve
            };
            let times: Vec<f64> = variants.iter().map(|&v| solve(v)).collect();
            let best = times[1].min(times[2]);
            println!(
                "| {} | {} | {:.3} | {:.3} | {:.3} | {:.1}% |",
                p.key,
                ranks,
                times[0],
                times[1],
                times[2],
                (1.0 - best / times[0]) * 100.0
            );
        }
    }
}
