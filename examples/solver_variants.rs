//! Prints the solve-phase comparison behind EXPERIMENTS.md's
//! "Communication overlap" table: modeled RD solve time per iteration for
//! the blocking, overlapped, and pipelined solver schedules on all four
//! platforms at 27 / 216 / 1000 ranks.
//!
//! The modeled engine is driven directly (not through `execute`) so the
//! what-if cells beyond a platform's real capacity — puma above 125 ranks,
//! ellipse above 512, lagrange above 343 — can still be evaluated: the
//! question is what the *interconnect* would do to each schedule, not
//! whether the machine room has the nodes.
//!
//! The same table regenerates declaratively from `plans/solver_variants.toml`
//! (`cargo run --release -p hetero-plan --example plan_run -- plans/solver_variants.toml`);
//! a pinning test keeps the two paths byte-identical.
//!
//! ```text
//! cargo run --release -p hetero-hpc --example solver_variants
//! ```

use hetero_hpc::report::render_solver_variants;
use hetero_hpc::scenarios::{solver_variants, ScenarioOptions};

fn main() {
    let opts = ScenarioOptions {
        steps: 4,
        discard: 1,
        ..ScenarioOptions::paper()
    };
    print!(
        "{}",
        render_solver_variants(&solver_variants(&[27, 216, 1000], &opts))
    );
}
