//! Spot fleet economics: reproduce Table II — the same 63-instance RD runs
//! priced as a full on-demand single-placement-group assembly vs a
//! spot/on-demand mix over four placement groups — and show why the paper
//! concluded that "regular allocation in a single placement group does not
//! introduce any performance benefits despite costing four times as much".
//!
//! ```sh
//! cargo run --release --example spot_fleet
//! ```

use hetero_hpc::report::render_table2;
use hetero_hpc::scenarios::{table2, ScenarioOptions};
use hetero_platform::spot::{acquire_fleet, FleetStrategy};

fn main() {
    let opts = ScenarioOptions::paper();
    let rows = table2(&opts);
    println!("{}", render_table2(&rows));

    let last = rows.last().unwrap();
    println!(
        "at 1000 ranks: single-group time {:.1} s vs mix {:.1} s ({:+.1}%)",
        last.full_time,
        last.mix_time,
        (last.mix_time / last.full_time - 1.0) * 100.0
    );
    println!(
        "real cost {:.4} $/iter vs est. (all-spot) {:.4} $/iter ({:.1}x cheaper)",
        last.full_cost,
        last.mix_est_cost,
        last.full_cost / last.mix_est_cost * last.mix_time / last.full_time
    );

    // The acquisition reality behind the "est." column: spot capacity never
    // covers the full 63-instance fleet.
    println!("\nspot acquisition attempts for 63 instances (5 seeds):");
    for seed in 0..5 {
        let fleet = acquire_fleet(
            63,
            FleetStrategy::SpotMix {
                groups: 4,
                max_bid: 1.0,
            },
            2.40,
            seed,
        );
        println!(
            "  seed {seed}: {} spot + {} on-demand -> {:.2} $/h (all on-demand would be {:.2} $/h)",
            fleet.spot_count(),
            63 - fleet.spot_count(),
            fleet.hourly_cost(),
            63.0 * 2.40
        );
    }
}
