//! Resilient spot execution: run the RD application on an EC2 spot fleet
//! under a live revocation market, recover through checkpoint/restart, and
//! compare the expected campaign cost against fault-free on-demand capacity
//! — the experiment the paper could not run ("we never succeeded in
//! establishing a full 63-host configuration of spot request instances").
//!
//! ```sh
//! cargo run --release --example spot_with_restart
//! ```

use hetero_fault::{FaultModel, SpotMarket};
use hetero_hpc::{execute_resilient, App, Fidelity, ResilienceSpec, RunRequest};
use hetero_platform::catalog;

fn main() {
    let ec2 = catalog::ec2();
    let ranks = 8;
    let steps = 6;

    // A compressed market so revocations land inside this tiny demo run:
    // epochs of 12 virtual milliseconds with aggressive price spikes. The
    // real sweep (`--bench table3_resilience`) uses the calibrated
    // 900-second epochs over 600-step campaigns.
    let mut spec = ResilienceSpec::spot_with_restart(&ec2, 1.0, 1, 50);
    spec.faults = FaultModel {
        crashes: None,
        spot: Some(SpotMarket {
            epoch_seconds: 0.012,
            spike_probability: 0.35,
            ..SpotMarket::ec2_like(1.0)
        }),
        degradation: None,
    };

    let req = RunRequest {
        fidelity: Fidelity::Numerical,
        resilience: Some(spec),
        ..RunRequest::new(ec2.clone(), App::paper_rd(steps), ranks, 3)
    };

    println!("running RD on an EC2 spot fleet under a hostile revocation market ...");
    let out = execute_resilient(&req).expect("within EC2 limits");
    let s = &out.stats;
    println!(
        "  attempts {} (faults {}), checkpoints {}, lost work {:.3} s, backoff {:.1} s",
        s.attempts,
        s.faults_injected,
        s.checkpoints_written,
        s.lost_work_seconds,
        s.backoff_seconds
    );
    println!(
        "  campaign: {:.1} s wall, {:.4} $ total ({} of {} nodes were spot)",
        s.total_seconds,
        s.total_dollars,
        out.first_attempt_spot_nodes,
        out.outcome.as_ref().map_or(0, |o| o.nodes)
    );

    // Rollback loses time, never accuracy: the recovered solution matches
    // the failure-free run bitwise.
    let recovered = out
        .outcome
        .expect("restart budget suffices")
        .verification
        .expect("numerical runs verify");
    let mut plain = req.clone();
    plain.resilience = None;
    let ff = hetero_hpc::execute(&plain)
        .expect("within EC2 limits")
        .verification
        .expect("numerical runs verify");
    println!(
        "  recovered Linf error {:.3e} vs failure-free {:.3e}",
        recovered.linf, ff.linf
    );
    assert!(s.faults_injected >= 1, "the market was supposed to bite");
    assert!((recovered.linf - ff.linf).abs() <= 1e-12);
    println!("\nOK: revocations cost wall-clock and dollars, not accuracy.");
}
