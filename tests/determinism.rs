//! Reproducibility guarantees: same seed -> bitwise identical results, in
//! both engines, despite real multithreading in the numerical one — and
//! despite injected faults in the resilient path.

use hetero_fault::{FaultModel, SpotMarket};
use hetero_hpc::apps::App;
use hetero_hpc::recovery::{execute_resilient, ResilienceSpec};
use hetero_hpc::run::{execute, Fidelity, RunRequest};
use hetero_hpc::scenarios::{table2, ScenarioOptions};
use hetero_platform::catalog;

/// An RD run on an EC2 spot fleet under a market compressed enough to
/// revoke nodes inside the tiny virtual duration of an 8-rank test run.
fn faulty_rd_request(seed: u64, threads_per_rank: usize) -> RunRequest {
    let ec2 = catalog::ec2();
    let mut spec = ResilienceSpec::spot_with_restart(&ec2, 1.0, 1, 50);
    spec.faults = FaultModel {
        crashes: None,
        spot: Some(SpotMarket {
            epoch_seconds: 0.012,
            spike_probability: 0.35,
            ..SpotMarket::ec2_like(1.0)
        }),
        degradation: None,
    };
    RunRequest {
        fidelity: Fidelity::Numerical,
        threads_per_rank,
        seed,
        resilience: Some(spec),
        ..RunRequest::new(ec2, App::paper_rd(6), 8, 3)
    }
}

#[test]
fn numerical_engine_is_deterministic_across_runs() {
    // 27 OS threads race on real mailboxes, but virtual time and numerics
    // are scheduling-independent.
    let req = RunRequest {
        fidelity: Fidelity::Numerical,
        ..RunRequest::new(catalog::ec2(), App::paper_rd(3), 27, 3)
    };
    let a = execute(&req).unwrap();
    let b = execute(&req).unwrap();
    assert_eq!(a.phases, b.phases);
    assert_eq!(a.cost_per_iteration, b.cost_per_iteration);
    assert_eq!(a.verification.unwrap().l2, b.verification.unwrap().l2);
    assert_eq!(a.bytes_per_iteration, b.bytes_per_iteration);
}

#[test]
fn report_is_bitwise_identical_across_intra_rank_thread_counts() {
    // The Fig-4-style RD scenario computed with explicit rayon pool sizes
    // 1 and 4 (wired through RunRequest, not the environment) must produce
    // byte-identical serialized reports: the fixed-chunk kernels make the
    // numerics a function of the data alone, never the thread count.
    let run = |threads: usize| -> String {
        let req = RunRequest {
            fidelity: Fidelity::Numerical,
            threads_per_rank: threads,
            ..RunRequest::new(catalog::ec2(), App::paper_rd(3), 8, 3)
        };
        format!("{:?}", execute(&req).unwrap())
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial, parallel);
}

#[test]
fn ns_report_is_bitwise_identical_across_thread_counts() {
    // Same guarantee for the heavier NS pipeline: four solves per step,
    // cached momentum/pressure assemblies, SSOR level sweeps.
    let run = |threads: usize| -> String {
        let req = RunRequest {
            fidelity: Fidelity::Numerical,
            threads_per_rank: threads,
            ..RunRequest::new(catalog::ec2(), App::paper_ns(2), 8, 3)
        };
        format!("{:?}", execute(&req).unwrap())
    };
    assert_eq!(run(1), run(4));
}

#[test]
fn modeled_engine_is_deterministic() {
    let req = RunRequest::new(catalog::ec2(), App::paper_rd(4), 729, 20);
    let a = execute(&req).unwrap();
    let b = execute(&req).unwrap();
    assert_eq!(a.phases, b.phases);
}

#[test]
fn seed_changes_jittered_platforms_only_slightly() {
    // Different seeds resample EC2's virtualization jitter: times move, but
    // by noise, not by regime.
    let mk = |seed: u64| RunRequest {
        seed,
        ..RunRequest::new(catalog::ec2(), App::paper_rd(4), 216, 20)
    };
    let a = execute(&mk(1)).unwrap().phases.total;
    let b = execute(&mk(2)).unwrap().phases.total;
    assert_ne!(a, b);
    assert!((a - b).abs() / a < 0.25, "{a} vs {b}");
}

#[test]
fn ideal_deterministic_platform_ignores_the_seed() {
    // lagrange's jitter is ~0; the seed shouldn't move its modeled times
    // meaningfully.
    let mk = |seed: u64| RunRequest {
        seed,
        ..RunRequest::new(catalog::lagrange(), App::paper_rd(3), 216, 20)
    };
    let a = execute(&mk(1)).unwrap().phases.total;
    let b = execute(&mk(2)).unwrap().phases.total;
    assert!((a - b).abs() / a < 0.02, "{a} vs {b}");
}

#[test]
fn fault_injected_report_is_bitwise_identical_across_thread_counts() {
    // Spot revocations fell nodes mid-run and the campaign recovers through
    // checkpoints and re-acquisition — yet the full serialized report
    // (campaign stats, phases, costs, error norms) is a function of the
    // seed alone, never of the intra-rank thread count or host scheduling.
    let run = |threads: usize| -> String {
        let out = execute_resilient(&faulty_rd_request(2012, threads)).unwrap();
        assert!(
            out.stats.faults_injected >= 1,
            "the market was supposed to bite: {:?}",
            out.stats
        );
        format!("{out:?}")
    };
    assert_eq!(run(1), run(4));
}

#[test]
fn fault_injected_report_is_deterministic_per_seed() {
    // A different seed samples a different market and crash stream: the
    // report changes, but each seed's report reproduces bitwise.
    let run = |seed: u64| -> String {
        let out = execute_resilient(&faulty_rd_request(seed, 1)).unwrap();
        format!("{out:?}")
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}

#[test]
fn whole_scenarios_reproduce_bitwise() {
    let opts = ScenarioOptions {
        steps: 2,
        discard: 0,
        max_k: 4,
        ..ScenarioOptions::paper()
    };
    let a = table2(&opts);
    let b = table2(&opts);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.full_time, y.full_time);
        assert_eq!(x.mix_time, y.mix_time);
        assert_eq!(x.mix_spot_nodes, y.mix_spot_nodes);
    }
}
