//! Cost-analysis shape checks: Table II and Figures 6/7.

use hetero_hpc::scenarios::{cost_curves, fig4, fig5, table2, ScenarioOptions};
use hetero_platform::catalog;

fn opts() -> ScenarioOptions {
    ScenarioOptions {
        steps: 3,
        discard: 1,
        ..ScenarioOptions::paper()
    }
}

#[test]
fn table2_reproduces_the_papers_structure() {
    let rows = table2(&opts());
    // The node ladder is exactly the paper's "#" column.
    let nodes: Vec<usize> = rows.iter().map(|r| r.nodes).collect();
    assert_eq!(nodes, vec![1, 1, 2, 4, 8, 14, 22, 32, 46, 63]);
    for r in &rows {
        // "Regular allocation in a single placement group does not
        // introduce any performance benefits": times equal within noise.
        let rel = (r.mix_time - r.full_time).abs() / r.full_time;
        assert!(
            rel < 0.2,
            "ranks {}: full {} vs mix {}",
            r.ranks,
            r.full_time,
            r.mix_time
        );
        // "...despite costing four times as much": per-hour rates differ by
        // 2.40/0.54 ~ 4.44.
        let hourly_ratio = (r.full_cost / r.full_time) / (r.mix_est_cost / r.mix_time);
        assert!(
            (3.8..=5.0).contains(&hourly_ratio),
            "ranks {}: {hourly_ratio}",
            r.ranks
        );
        // Costs grow superlinearly in ranks (time grows too).
        assert!(r.full_cost > 0.0 && r.mix_est_cost > 0.0);
    }
    // Monotone cost growth down the ladder.
    for pair in rows.windows(2) {
        assert!(pair[1].full_cost > pair[0].full_cost);
    }
    // "We never succeeded in establishing a full 63-host configuration of
    // spot request instances."
    assert!(rows.last().unwrap().mix_spot_nodes < 63);
}

#[test]
fn table2_cost_arithmetic_matches_the_paper() {
    // The paper's real cost column is time x instances x $2.40/3600, and
    // the estimate column is time x instances x $0.54/3600. Verify our
    // pipeline implements exactly that arithmetic.
    let rows = table2(&opts());
    for r in &rows {
        let expect_full = r.full_time * r.nodes as f64 * 2.40 / 3600.0;
        assert!(
            (r.full_cost - expect_full).abs() / expect_full < 1e-9,
            "ranks {}",
            r.ranks
        );
        let expect_mix = r.mix_time * r.nodes as f64 * 0.54 / 3600.0;
        assert!((r.mix_est_cost - expect_mix).abs() / expect_mix < 1e-9);
    }
}

#[test]
fn fig6_whole_node_billing_penalizes_small_jobs() {
    // "As Amazon charges the users for the entire machine, this price
    // increases if not all cores are utilized, as shown on both charts for
    // two first cases."
    let table = fig4(&opts());
    let curves = cost_curves(&table, &opts());
    let ec2 = curves.iter().find(|c| c.label == "ec2").unwrap();
    let effective_rate = |ranks: usize| {
        let (_, cost) = ec2.points.iter().find(|&&(r, _)| r == ranks).unwrap();
        let t = table.outcome(ranks, "ec2").unwrap().phases.total;
        cost / (ranks as f64 * t / 3600.0) // $/core-hour
    };
    // 1 rank pays a whole 16-core instance; 125 ranks amortize 8 instances.
    assert!(effective_rate(1) > 10.0 * effective_rate(125));
}

#[test]
fn fig6_cheapest_platform_at_small_scale_is_the_home_cluster() {
    let table = fig4(&opts());
    let curves = cost_curves(&table, &opts());
    let cost_at = |label: &str, ranks: usize| -> f64 {
        curves
            .iter()
            .find(|c| c.label == label)
            .unwrap()
            .points
            .iter()
            .find(|&&(r, _)| r == ranks)
            .map(|&(_, c)| c)
            .unwrap()
    };
    for ranks in [8usize, 27, 64, 125] {
        assert!(
            cost_at("puma", ranks) < cost_at("lagrange", ranks),
            "ranks {ranks}"
        );
        assert!(
            cost_at("puma", ranks) < cost_at("ec2", ranks),
            "ranks {ranks}"
        );
    }
}

#[test]
fn fig7_ec2_mix_beats_the_home_cluster_for_ns() {
    // The paper's headline cost finding: "This is readily apparent in the
    // case of the Navier-Stokes application — EC2 costs less than our
    // on-premise cluster and is faster as well" (with the cost-aware spot
    // strategy).
    let o = opts();
    let table = fig5(&o);
    let curves = cost_curves(&table, &o);
    let mix = curves.iter().find(|c| c.label == "ec2 mix").unwrap();
    for ranks in [27usize, 64, 125] {
        let (_, mix_cost) = mix.points.iter().find(|&&(r, _)| r == ranks).unwrap();
        let puma_cost = curves[0]
            .points
            .iter()
            .find(|&&(r, _)| r == ranks)
            .map(|&(_, c)| c);
        let Some(puma_cost) = puma_cost else { continue };
        let t_mix = table.outcome(ranks, "ec2").unwrap().phases.total;
        let t_puma = table.outcome(ranks, "puma").unwrap().phases.total;
        assert!(
            t_mix < t_puma,
            "ranks {ranks}: ec2 {t_mix} vs puma {t_puma}"
        );
        assert!(
            *mix_cost < 1.1 * puma_cost,
            "ranks {ranks}: mix {mix_cost} vs puma {puma_cost}"
        );
    }
}

#[test]
fn fig6_mix_converges_toward_full_at_large_sizes() {
    // "Obtaining a large number of hosts via spot requests is difficult if
    // not impossible ... this is apparent in the convergence of the mix and
    // regular curves."
    let o = opts();
    let table = fig4(&o);
    let curves = cost_curves(&table, &o);
    let full = curves.iter().find(|c| c.label == "ec2").unwrap();
    let mix = curves.iter().find(|c| c.label == "ec2 mix").unwrap();
    let ratio_at = |ranks: usize| -> f64 {
        let f = full.points.iter().find(|&&(r, _)| r == ranks).unwrap().1;
        let m = mix.points.iter().find(|&&(r, _)| r == ranks).unwrap().1;
        f / m
    };
    // Small fleets fill entirely from spot (ratio ~ 4.4); the 63-node fleet
    // needs on-demand top-up, pulling the ratio down.
    assert!(ratio_at(64) > 4.0, "{}", ratio_at(64));
    assert!(
        ratio_at(1000) < ratio_at(64),
        "{} vs {}",
        ratio_at(1000),
        ratio_at(64)
    );
}

#[test]
fn numerical_engine_supports_placement_group_fleets() {
    // The threaded engine must also run on a spot-mix topology (Table II's
    // configuration), producing the same verified numerics at a slightly
    // different simulated time.
    use hetero_hpc::apps::App;
    use hetero_hpc::run::{execute, Fidelity, RunRequest};
    use hetero_platform::spot::{acquire_fleet, FleetStrategy};

    let ec2 = catalog::ec2();
    let base = RunRequest {
        fidelity: Fidelity::Numerical,
        ..RunRequest::new(ec2.clone(), App::paper_rd(2), 24, 3)
    };
    let single = execute(&base).unwrap();

    let fleet = acquire_fleet(
        2,
        FleetStrategy::SpotMix {
            groups: 2,
            max_bid: 1.0,
        },
        2.40,
        7,
    );
    let mix = execute(&RunRequest {
        topology_override: Some(fleet.topology(16)),
        cost_override: Some(catalog::ec2_spot_cost()),
        ..base
    })
    .unwrap();

    // Same math either way.
    assert_eq!(
        single.verification.unwrap().l2,
        mix.verification.unwrap().l2,
        "numerics must not depend on placement"
    );
    // Same order of magnitude in time; strictly cheaper at spot rates.
    let rel = (mix.phases.total - single.phases.total).abs() / single.phases.total;
    assert!(rel < 0.5, "rel = {rel}");
    assert!(mix.cost_per_iteration < single.cost_per_iteration);
}

#[test]
fn csv_reports_mark_infeasible_rows() {
    use hetero_hpc::report::weak_scaling_csv;
    let o = ScenarioOptions {
        steps: 2,
        discard: 0,
        ..ScenarioOptions::paper()
    };
    let table = fig4(&o);
    let csv = weak_scaling_csv(&table);
    // puma above 125 ranks must appear as infeasible rows, not silently
    // vanish.
    assert!(csv.contains("RD,216,puma,,,,,,infeasible"));
    assert!(csv.contains("RD,1000,ec2,"));
    assert!(!csv.contains("RD,1000,ec2,,"));
}

#[test]
fn core_hour_rates_are_the_papers() {
    // 2.3 c (puma, estimated), 5 c (ellipse), 19.19 c (lagrange),
    // 15 c/core on a full cc2.8xlarge, 3.375 c at the spot rate.
    let hour = 3600.0;
    assert!((catalog::puma().cost_of(1, hour) - 0.023).abs() < 1e-12);
    assert!((catalog::ellipse().cost_of(1, hour) - 0.05).abs() < 1e-12);
    assert!((catalog::lagrange().cost_of(1, hour) - 0.1919).abs() < 1e-12);
    assert!((catalog::ec2().cost_of(16, hour) / 16.0 - 0.15).abs() < 1e-12);
    assert!((catalog::ec2_spot_cost().cost(16, hour) / 16.0 - 0.03375).abs() < 1e-12);
}
