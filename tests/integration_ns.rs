//! End-to-end tests of the Navier-Stokes application across the stack.

use hetero_hpc::apps::App;
use hetero_hpc::run::{execute, Fidelity, RunRequest};
use hetero_platform::catalog;

fn ns_req(platform: hetero_platform::PlatformSpec, ranks: usize) -> RunRequest {
    RunRequest {
        fidelity: Fidelity::Numerical,
        ..RunRequest::new(platform, App::paper_ns(3), ranks, 3)
    }
}

#[test]
fn ns_tracks_ethier_steinman_on_every_platform() {
    for platform in catalog::all_platforms() {
        let out = execute(&ns_req(platform, 8)).expect("8 ranks fit everywhere");
        let v = out.verification.unwrap();
        assert!(v.linf < 0.06, "{}: linf = {}", out.platform, v.linf);
        assert!(out.phases.solve > 0.0);
        assert!(out.phases.assembly > 0.0);
    }
}

#[test]
fn ns_is_heavier_than_rd_everywhere() {
    // "The Navier-Stokes test is more computationally demanding than the
    // simple RD test" — per iteration, on every platform.
    for platform in catalog::all_platforms() {
        let rd = execute(&RunRequest {
            fidelity: Fidelity::Numerical,
            ..RunRequest::new(platform.clone(), App::paper_rd(2), 8, 3)
        })
        .unwrap();
        let ns = execute(&RunRequest {
            fidelity: Fidelity::Numerical,
            ..RunRequest::new(platform.clone(), App::paper_ns(2), 8, 3)
        })
        .unwrap();
        assert!(
            ns.phases.total > 2.0 * rd.phases.total,
            "{}: ns {} vs rd {}",
            platform.key,
            ns.phases.total,
            rd.phases.total
        );
    }
}

#[test]
fn ns_moves_more_data_than_rd() {
    // "The data volume exchanged among the MPI processes during the
    // computation increases as this problem involves two variables."
    let platform = catalog::ellipse();
    let rd = execute(&RunRequest {
        fidelity: Fidelity::Numerical,
        ..RunRequest::new(platform.clone(), App::paper_rd(2), 8, 3)
    })
    .unwrap();
    let ns = execute(&RunRequest {
        fidelity: Fidelity::Numerical,
        ..RunRequest::new(platform, App::paper_ns(2), 8, 3)
    })
    .unwrap();
    assert!(
        ns.bytes_per_iteration > 2.0 * rd.bytes_per_iteration,
        "ns {} vs rd {}",
        ns.bytes_per_iteration,
        rd.bytes_per_iteration
    );
}

#[test]
fn ns_distributed_equals_serial_numerics() {
    // Weak-scaling requests grow the mesh with the rank count, so to compare
    // engines on the SAME global mesh: 1 rank x 6^3 cells vs 8 ranks x 3^3
    // cells each (both a 6^3 global mesh).
    let serial = execute(&RunRequest {
        fidelity: Fidelity::Numerical,
        ..RunRequest::new(catalog::puma(), App::paper_ns(3), 1, 6)
    })
    .unwrap();
    let dist = execute(&ns_req(catalog::puma(), 8)).unwrap();
    let (s, d) = (
        serial.verification.unwrap().l2,
        dist.verification.unwrap().l2,
    );
    assert!((s - d).abs() / s < 1e-4, "serial {s} vs distributed {d}");
}

#[test]
fn ns_assembly_phase_dominates_at_small_scale() {
    // With the convection-dependent operator rebuilt every step, assembly
    // is the biggest phase at small rank counts (compute-dominated regime).
    let out = execute(&ns_req(catalog::ec2(), 8)).unwrap();
    assert!(out.phases.assembly > out.phases.solve);
    assert!(out.phases.assembly > out.phases.precond);
}
