//! Table I / Section VI end-to-end checks through the harness and renderer.

use hetero_hpc::report::render_table1;
use hetero_hpc::scenarios::table1;
use hetero_platform::provision::{environment_of, plan, Action, Pkg};

#[test]
fn effort_totals_match_section_vi() {
    let t = table1();
    let hours: Vec<(String, f64)> = t
        .plans
        .iter()
        .map(|p| (p.platform.clone(), p.total_hours()))
        .collect();
    let h = |key: &str| hours.iter().find(|(k, _)| k == key).unwrap().1;
    // puma is the home environment: nothing to do.
    assert_eq!(h("puma"), 0.0);
    // "All software preconditioning actions took about 8 man-hours" on both
    // ellipse and lagrange.
    assert!((7.0..=9.5).contains(&h("ellipse")), "{}", h("ellipse"));
    assert!((6.0..=9.5).contains(&h("lagrange")), "{}", h("lagrange"));
    // "Provisioning of a machine took about a day" in the worst case (EC2).
    assert!((8.5..=12.0).contains(&h("ec2")), "{}", h("ec2"));
}

#[test]
fn remediations_match_table_is_colored_cells() {
    // ellipse: MPI missing -> source install; BLAS via ACML; SGE can't run
    // parallel jobs -> Open MPI liaison.
    let ellipse = plan(&environment_of("ellipse").unwrap()).unwrap();
    assert!(ellipse
        .steps
        .iter()
        .any(|s| s.item.contains("Open MPI") && s.action == Action::SourceBuild));
    assert!(ellipse.steps.iter().any(|s| s.action == Action::SgeLiaison));

    // lagrange: MPI and compilers provided; vendor MKL; Trilinos et al from
    // source.
    let lagrange = plan(&environment_of("lagrange").unwrap()).unwrap();
    assert!(!lagrange.steps.iter().any(|s| s.item.contains("Open MPI")));
    assert!(lagrange
        .steps
        .iter()
        .any(|s| matches!(&s.action, Action::VendorLibrary(v) if v == "MKL")));

    // ec2: yum for the toolchain, source for CMake (not in the repos) and
    // the scientific stack, plus the cloud-specific system configuration.
    let ec2 = plan(&environment_of("ec2").unwrap()).unwrap();
    assert!(ec2
        .steps
        .iter()
        .any(|s| s.item.contains("GCC") && s.action == Action::PackageManager));
    assert!(ec2
        .steps
        .iter()
        .any(|s| s.item.contains("CMake") && s.action == Action::SourceBuild));
    let sysconfigs = ec2
        .steps
        .iter()
        .filter(|s| matches!(s.action, Action::SystemConfig(_)))
        .count();
    assert!(
        sysconfigs >= 4,
        "ssh keys, ports, partition, image: {sysconfigs}"
    );
}

#[test]
fn every_platform_plan_is_dependency_ordered() {
    for key in ["puma", "ellipse", "lagrange", "ec2"] {
        let p = plan(&environment_of(key).unwrap()).unwrap();
        // If both a package and one of its dependencies appear as steps,
        // the dependency comes first.
        let pos = |name: &str| p.steps.iter().position(|s| s.item == name);
        for pkg in Pkg::ALL {
            if let Some(i) = pos(pkg.name()) {
                for dep in pkg.deps() {
                    if let Some(j) = pos(dep.name()) {
                        assert!(j < i, "{key}: {} must precede {}", dep.name(), pkg.name());
                    }
                }
            }
        }
    }
}

#[test]
fn rendered_table_one_is_complete() {
    let text = render_table1(&table1());
    // All Table I rows that we model.
    for row in [
        "cpu arch.",
        "cores/node",
        "RAM/core",
        "network",
        "access",
        "support",
        "execution",
        "cost",
    ] {
        assert!(text.contains(row), "missing row {row}");
    }
    // The paper's remediation annotations appear.
    assert!(text.contains("source install"));
    assert!(text.contains("yum install"));
    assert!(text.contains("vendor lib"));
    // And the effort summary.
    assert!(text.contains("Effort totals"));
}

#[test]
fn package_effort_sums_are_attributed_to_real_steps() {
    let ec2 = plan(&environment_of("ec2").unwrap()).unwrap();
    let step_sum: f64 = ec2.steps.iter().map(|s| s.hours).sum();
    assert!((step_sum - ec2.total_hours()).abs() < 1e-12);
    // Trilinos is the single biggest source build, as any practitioner of
    // that era would confirm.
    let max_step = ec2
        .steps
        .iter()
        .max_by(|a, b| a.hours.partial_cmp(&b.hours).unwrap())
        .unwrap();
    assert!(max_step.item.contains("Trilinos"), "{max_step:?}");
}
