//! End-to-end tests of the reaction-diffusion application across the full
//! stack: mesh -> partition -> DoF maps -> distributed assembly -> Krylov
//! solve -> platform timing/cost, on all four simulated platforms.

use hetero_fem::assembly::{apply_dirichlet, assemble_matrix, assemble_vector, scalar_kernels};
use hetero_fem::dofmap::DofMap;
use hetero_fem::element::ElementOrder;
use hetero_fem::quadrature::GaussRule3d;
use hetero_hpc::apps::App;
use hetero_hpc::run::{execute, Fidelity, RunRequest};
use hetero_linalg::precond::Jacobi;
use hetero_linalg::solver::{cg, SolveOptions};
use hetero_mesh::{DistributedMesh, Point3, StructuredHexMesh};
use hetero_partition::{BlockPartitioner, Partitioner};
use hetero_platform::catalog;
use hetero_simmpi::{run_spmd, ClusterTopology, ComputeModel, NetworkModel, SpmdConfig};
use std::sync::Arc;

#[test]
fn rd_is_exact_on_every_platform() {
    // The Q2 + BDF2 discretization reproduces the paper's exact solution on
    // all four platforms; only the simulated clock (and therefore cost)
    // differs.
    let mut totals = Vec::new();
    for platform in catalog::all_platforms() {
        let req = RunRequest {
            fidelity: Fidelity::Numerical,
            discard: 1,
            ..RunRequest::new(platform, App::paper_rd(3), 8, 3)
        };
        let out = execute(&req).expect("8 ranks fit everywhere");
        let v = out.verification.unwrap();
        assert!(v.linf < 5e-6, "{}: linf = {}", out.platform, v.linf);
        totals.push((out.platform.clone(), out.phases.total));
    }
    // Identical math, different simulated speeds: ec2 (newest CPUs) beats
    // puma (2006 Opterons).
    let time_of = |key: &str| totals.iter().find(|(k, _)| k == key).unwrap().1;
    assert!(time_of("ec2") < time_of("puma"));
    assert!(time_of("lagrange") < time_of("ellipse"));
}

#[test]
fn rd_iteration_time_is_stable_across_steps() {
    // Weak form of the paper's methodology: after discarding warm-up
    // iterations, per-iteration times are steady (each step does the same
    // work).
    let req = RunRequest {
        fidelity: Fidelity::Numerical,
        discard: 0,
        ..RunRequest::new(catalog::puma(), App::paper_rd(5), 8, 3)
    };
    let out = execute(&req).unwrap();
    // Re-run with discard and compare: the average barely moves.
    let req2 = RunRequest { discard: 2, ..req };
    let out2 = execute(&req2).unwrap();
    let rel = (out.phases.total - out2.phases.total).abs() / out.phases.total;
    assert!(rel < 0.25, "rel = {rel}");
}

/// A genuine convergence study with a manufactured non-polynomial solution:
/// -lap(u) = f with u = sin(pi x) sin(pi y) sin(pi z), via the same
/// assembly/solver machinery the RD app uses. Q1 nodal errors must drop at
/// ~O(h^2).
#[test]
fn manufactured_poisson_converges_at_second_order() {
    let exact = |p: Point3| {
        (std::f64::consts::PI * p.x).sin()
            * (std::f64::consts::PI * p.y).sin()
            * (std::f64::consts::PI * p.z).sin()
    };
    let forcing = move |p: Point3| 3.0 * std::f64::consts::PI.powi(2) * exact(p);

    let solve_on = |n: usize| -> f64 {
        let mesh = StructuredHexMesh::unit_cube(n);
        let assignment = Arc::new(BlockPartitioner.partition(&mesh, 8));
        let cfg = SpmdConfig {
            size: 8,
            topo: ClusterTopology::uniform(2, 4),
            net: NetworkModel::ideal(),
            compute: ComputeModel::new(1e9, 4e9),
            seed: 0,
        };
        let results = run_spmd(cfg, move |comm| {
            let dmesh = DistributedMesh::new(mesh.clone(), Arc::clone(&assignment), comm.rank(), 8);
            let dm = DofMap::build(&dmesh, ElementOrder::Q1, comm);
            let h = mesh.cell_size();
            let kern = scalar_kernels(ElementOrder::Q1, h);
            let mut a = assemble_matrix(&dm, &dm, comm, 1, |_i, out| {
                out.copy_from_slice(&kern.stiffness);
            });
            // Per-cell quadrature of the spatially varying forcing.
            let rule = GaussRule3d::new(2);
            let owned: Vec<usize> = dmesh.owned_cells().to_vec();
            let mut b = assemble_vector(&dm, comm, |i, out| {
                let cell = mesh.cell_index(owned[i]);
                let origin = mesh.corner_point(cell);
                for (qp, &w) in rule.points.iter().zip(&rule.weights) {
                    let x = Point3::new(
                        origin.x + qp[0] * h.x,
                        origin.y + qp[1] * h.y,
                        origin.z + qp[2] * h.z,
                    );
                    let fval = forcing(x) * w * h.x * h.y * h.z;
                    for (a_loc, o) in out.iter_mut().enumerate() {
                        *o += fval * ElementOrder::Q1.shape(a_loc, qp[0], qp[1], qp[2]);
                    }
                }
            });
            apply_dirichlet(&mut a, &mut b, &dm, |_| 0.0, comm);
            let jac = Jacobi::new(&a, comm);
            let mut x = a.new_vector();
            let opts = SolveOptions {
                max_iters: 2000,
                ..SolveOptions::default()
            };
            let stats = cg(&a, &b, &mut x, &jac, opts, comm);
            assert!(stats.converged, "{stats:?}");
            dm.nodal_l2_error(&x, exact, comm)
        });
        results[0].value
    };

    let e4 = solve_on(4);
    let e8 = solve_on(8);
    let rate = (e4 / e8).log2();
    assert!(rate > 1.7, "rate = {rate} (e4 = {e4}, e8 = {e8})");
}

#[test]
fn rd_q1_and_q2_agree_on_this_exact_solution() {
    // Both orders reproduce the separable quadratic at the nodes — a strong
    // cross-check of two independent element implementations.
    for order in [ElementOrder::Q1, ElementOrder::Q2] {
        let app = App::Rd(hetero_fem::rd::RdConfig {
            order,
            steps: 2,
            ..hetero_fem::rd::RdConfig::default()
        });
        let req = RunRequest {
            fidelity: Fidelity::Numerical,
            ..RunRequest::new(catalog::puma(), app, 8, 3)
        };
        let out = execute(&req).unwrap();
        assert!(out.verification.unwrap().linf < 1e-5, "{order:?}");
    }
}

#[test]
fn partitioner_choice_does_not_change_the_numbers() {
    // RCB and block partitions give bitwise different layouts but the same
    // converged solution error.
    let mesh = StructuredHexMesh::unit_cube(4);
    let run_with = |assignment: Vec<usize>| -> f64 {
        let assignment = Arc::new(assignment);
        let mesh = mesh.clone();
        let cfg = SpmdConfig {
            size: 8,
            topo: ClusterTopology::uniform(2, 4),
            net: NetworkModel::gigabit_ethernet(),
            compute: ComputeModel::new(1e9, 4e9),
            seed: 1,
        };
        let results = run_spmd(cfg, move |comm| {
            let dmesh = DistributedMesh::new(mesh.clone(), Arc::clone(&assignment), comm.rank(), 8);
            let r = hetero_fem::rd::solve_rd(
                &dmesh,
                &hetero_fem::rd::RdConfig {
                    steps: 2,
                    ..Default::default()
                },
                comm,
            );
            r.l2_error
        });
        results[0].value
    };
    let block = run_with(BlockPartitioner.partition(&mesh, 8));
    let rcb = run_with(hetero_partition::RcbPartitioner.partition(&mesh, 8));
    assert!((block - rcb).abs() < 1e-9, "block {block} vs rcb {rcb}");
}
