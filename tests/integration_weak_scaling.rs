//! Paper-scale weak-scaling shape checks (Figures 4 and 5): who wins, where
//! the curves truncate, and how the platforms order — the reproduction
//! targets of DESIGN.md's experiment index.

use hetero_hpc::run::Fidelity;
use hetero_hpc::scenarios::{fig4, fig5, ScenarioOptions, WeakScalingTable};

fn paper_opts() -> ScenarioOptions {
    ScenarioOptions {
        steps: 7,
        discard: 5,
        ..ScenarioOptions::paper()
    }
}

fn degradation(table: &WeakScalingTable, platform: &str, ranks: usize) -> f64 {
    table.outcome(ranks, platform).unwrap().phases.total
        / table.outcome(1, platform).unwrap().phases.total
}

#[test]
fn fig4_truncation_points_match_the_paper() {
    let t = fig4(&paper_opts());
    // puma: 128 cores -> 125 is the last rung; ellipse: mpiexec fails above
    // 512; lagrange: IB volume cap above 343; ec2: the only platform that
    // reaches 1000 ("only Cloud providers could provide a large enough
    // offering to sustain the biggest, 1000-core task").
    assert_eq!(t.max_feasible_ranks("puma"), 125);
    assert_eq!(t.max_feasible_ranks("ellipse"), 512);
    assert_eq!(t.max_feasible_ranks("lagrange"), 343);
    assert_eq!(t.max_feasible_ranks("ec2"), 1000);
}

#[test]
fn fig4_rd_scales_well_up_to_125_everywhere() {
    // "The problem scales well for all targets in the range 1-125 MPI
    // processes": no platform degrades by more than ~60% there.
    let t = fig4(&paper_opts());
    for platform in ["puma", "ellipse", "lagrange", "ec2"] {
        for ranks in [8usize, 27, 64, 125] {
            let d = degradation(&t, platform, ranks);
            assert!(d < 1.6, "{platform} at {ranks}: degradation {d}");
        }
    }
}

#[test]
fn fig4_only_lagrange_maintains_weak_scaling_at_large_sizes() {
    // "After a certain problem size, only the HPC machine lagrange
    // maintains a good weak scaling characteristic."
    let t = fig4(&paper_opts());
    let lagrange = degradation(&t, "lagrange", 343);
    let ellipse = degradation(&t, "ellipse", 343);
    let ec2 = degradation(&t, "ec2", 343);
    assert!(lagrange < 1.5, "lagrange {lagrange}");
    assert!(
        ellipse > lagrange,
        "ellipse {ellipse} vs lagrange {lagrange}"
    );
    assert!(ec2 > lagrange, "ec2 {ec2} vs lagrange {lagrange}");
}

#[test]
fn fig4_ec2_has_the_worst_relative_degradation() {
    // "...the ec2 configuration characterizes by the worse performance
    // degradation in comparison to puma and ellipse."
    let t = fig4(&paper_opts());
    let ec2 = degradation(&t, "ec2", 125);
    let at_max = degradation(&t, "ec2", 1000);
    let puma = degradation(&t, "puma", 125);
    let ellipse = degradation(&t, "ellipse", 512);
    assert!(
        at_max > ellipse,
        "ec2@1000 {at_max} vs ellipse@512 {ellipse}"
    );
    assert!(at_max > 5.0, "ec2 must collapse at scale: {at_max}");
    assert!(ec2 > 0.8 * puma, "ec2@125 {ec2} vs puma@125 {puma}");
}

#[test]
fn fig4_newest_cpus_win_at_small_scale() {
    // At 1-8 ranks the network is irrelevant and the 2011/12 Xeons (ec2,
    // lagrange) beat the 2006 Opterons (puma, ellipse) outright.
    let t = fig4(&paper_opts());
    for ranks in [1usize, 8] {
        let time = |p: &str| t.outcome(ranks, p).unwrap().phases.total;
        assert!(time("ec2") < time("puma"));
        assert!(time("ec2") < time("ellipse"));
        assert!(time("lagrange") < time("ellipse"));
    }
}

#[test]
fn fig4_phase_ordering_is_paper_like() {
    // Assembly is the dominant phase at small scale; the solve phase is the
    // one that blows up with the network at large scale.
    let t = fig4(&paper_opts());
    let small = t.outcome(8, "ec2").unwrap().phases;
    assert!(small.assembly > small.solve);
    let large = t.outcome(1000, "ec2").unwrap().phases;
    assert!(large.solve > large.assembly);
}

#[test]
fn fig5_ns_scales_worse_than_rd() {
    // "This test does not scale well in any range."
    let opts = ScenarioOptions {
        steps: 3,
        discard: 1,
        ..paper_opts()
    };
    let rd = fig4(&opts);
    let ns = fig5(&opts);
    for platform in ["puma", "ellipse", "ec2"] {
        // NS moves more data, so the *absolute* scaling overhead (seconds
        // added going from 1 to 125 ranks) is larger than RD's on every
        // Ethernet platform.
        let overhead = |t: &WeakScalingTable| {
            t.outcome(125, platform).unwrap().phases.total
                - t.outcome(1, platform).unwrap().phases.total
        };
        let o_rd = overhead(&rd);
        let o_ns = overhead(&ns);
        assert!(o_ns > o_rd, "{platform}: NS overhead {o_ns} vs RD {o_rd}");
    }
    // NS at 125 degrades noticeably even on the best Ethernet platform, and
    // collapses at full scale.
    assert!(degradation(&ns, "ec2", 125) > 1.3);
    assert!(degradation(&ns, "ec2", 1000) > degradation(&rd, "ec2", 1000));
}

#[test]
fn fig5_ec2_competitive_with_hpc_at_small_scale() {
    // "For computationally intensive tasks for a small number of processes,
    // Amazon EC2 performance is comparable to the HPC class machine and can
    // considerably improve time to completion in comparison to the
    // department class computing clusters."
    let opts = ScenarioOptions {
        steps: 3,
        discard: 1,
        ..paper_opts()
    };
    let ns = fig5(&opts);
    let time = |p: &str, r: usize| ns.outcome(r, p).unwrap().phases.total;
    for ranks in [8usize, 27, 64] {
        let ratio = time("ec2", ranks) / time("lagrange", ranks);
        assert!(
            (0.6..=1.4).contains(&ratio),
            "ranks {ranks}: ec2/lagrange = {ratio}"
        );
        assert!(
            time("ec2", ranks) < 0.65 * time("puma", ranks),
            "ranks {ranks}"
        );
    }
}

#[test]
fn modeled_ladder_is_deterministic() {
    let a = fig4(&ScenarioOptions {
        max_k: 4,
        steps: 2,
        discard: 0,
        ..paper_opts()
    });
    let b = fig4(&ScenarioOptions {
        max_k: 4,
        steps: 2,
        discard: 0,
        ..paper_opts()
    });
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        for ((_, ca), (_, cb)) in ra.cells.iter().zip(&rb.cells) {
            match (ca, cb) {
                (Ok(x), Ok(y)) => assert_eq!(x.phases.total, y.phases.total),
                (Err(_), Err(_)) => {}
                _ => panic!("feasibility differs between identical runs"),
            }
        }
    }
}

#[test]
fn numerical_smoke_ladder_runs_end_to_end() {
    // The whole fig4 pipeline also works with the threaded numerical engine
    // at smoke scale.
    let opts = ScenarioOptions {
        per_rank_axis: 3,
        max_k: 2,
        steps: 2,
        discard: 0,
        fidelity: Fidelity::Numerical,
        seed: 7,
        trace: None,
    };
    let t = fig4(&opts);
    assert_eq!(t.rows.len(), 2);
    for row in &t.rows {
        for (key, cell) in &row.cells {
            let out = cell.as_ref().unwrap_or_else(|e| panic!("{key}: {e}"));
            assert!(out.verification.is_some());
        }
    }
}
