//! The kernel-backend contract, end to end through the harness: the
//! matrix-free refresh path reuses the retained operator's storage and the
//! cached scatter order, so it never changes a bit of any report — only
//! the host-side work of rebuilding the matrix each step.

use hetero_hpc::apps::App;
use hetero_hpc::run::{execute, Fidelity, RunRequest};
use hetero_linalg::KernelBackend;
use hetero_platform::catalog;

fn rd_numerical(backend: Option<KernelBackend>, threads: usize) -> RunRequest {
    RunRequest {
        fidelity: Fidelity::Numerical,
        threads_per_rank: threads,
        kernel_backend: backend,
        discard: 1,
        ..RunRequest::new(catalog::ec2(), App::paper_rd(3), 8, 3)
    }
}

#[test]
fn assembled_override_is_the_identity() {
    // `Some(Assembled)` must be indistinguishable from `None`: the override
    // is folded into the app config, not a separate code path.
    let a = execute(&rd_numerical(None, 1)).unwrap();
    let b = execute(&rd_numerical(Some(KernelBackend::Assembled), 1)).unwrap();
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn matrix_free_rd_report_matches_assembled_byte_for_byte() {
    // Identical virtual clocks, phase times, errors, iteration counts —
    // the backends differ only in host-side allocation and copying.
    let a = execute(&rd_numerical(None, 1)).unwrap();
    let b = execute(&rd_numerical(Some(KernelBackend::MatrixFree), 1)).unwrap();
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn matrix_free_ns_report_matches_assembled_byte_for_byte() {
    let run = |backend: Option<KernelBackend>| {
        execute(&RunRequest {
            fidelity: Fidelity::Numerical,
            kernel_backend: backend,
            ..RunRequest::new(catalog::ec2(), App::paper_ns(2), 8, 3)
        })
        .unwrap()
    };
    let a = run(None);
    let b = run(Some(KernelBackend::MatrixFree));
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn matrix_free_report_is_bitwise_identical_across_thread_counts() {
    // The refresh path reuses the same fixed-chunk kernels, so the whole
    // serialized report is still a function of the data alone.
    let run = |threads: usize| -> String {
        let out = execute(&rd_numerical(Some(KernelBackend::MatrixFree), threads)).unwrap();
        format!("{out:?}")
    };
    assert_eq!(run(1), run(4));
}

#[test]
fn matrix_free_composes_with_solver_variants() {
    // Backend and communication-schedule knobs are orthogonal: flipping
    // both must still match the assembled overlapped run byte for byte.
    use hetero_linalg::SolverVariant;
    let run = |backend: Option<KernelBackend>| {
        execute(&RunRequest {
            solver_variant: Some(SolverVariant::Overlapped),
            ..rd_numerical(backend, 1)
        })
        .unwrap()
    };
    let a = run(None);
    let b = run(Some(KernelBackend::MatrixFree));
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}
