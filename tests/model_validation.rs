//! Pins the analytic (modeled) engine to the threaded numerical engine:
//! same sizes, same platforms, the simulated times must agree. This is the
//! license for using the modeled engine at the paper's 1000-rank scale.

use hetero_fem::profile;
use hetero_hpc::apps::App;
use hetero_hpc::run::{execute, Fidelity, RunRequest};
use hetero_platform::catalog;

fn both_engines(
    platform: hetero_platform::PlatformSpec,
    app: App,
    ranks: usize,
    axis: usize,
) -> (hetero_fem::phase::PhaseTimes, hetero_fem::phase::PhaseTimes) {
    let base = RunRequest {
        discard: 1,
        ..RunRequest::new(platform, app, ranks, axis)
    };
    let numerical = execute(&RunRequest {
        fidelity: Fidelity::Numerical,
        ..base.clone()
    })
    .unwrap()
    .phases;
    let modeled = execute(&RunRequest {
        fidelity: Fidelity::Modeled,
        ..base
    })
    .unwrap()
    .phases;
    (numerical, modeled)
}

fn assert_close(label: &str, a: f64, b: f64, rel_tol: f64) {
    let rel = (a - b).abs() / a.max(b).max(1e-30);
    assert!(
        rel < rel_tol,
        "{label}: numerical {a} vs modeled {b} (rel {rel:.3})"
    );
}

#[test]
fn rd_engines_agree_distributed() {
    // Distributed RD at the sizes where the iteration law is calibrated:
    // totals within 25%, assembly within 20%.
    for (ranks, axis) in [(8usize, 4usize), (8, 5), (27, 4)] {
        let (num, modeled) = both_engines(catalog::ellipse(), App::paper_rd(3), ranks, axis);
        assert_close(
            &format!("total {ranks}x{axis}^3"),
            num.total,
            modeled.total,
            0.25,
        );
        assert_close(
            &format!("assembly {ranks}x{axis}^3"),
            num.assembly,
            modeled.assembly,
            0.20,
        );
    }
}

#[test]
fn rd_engines_agree_on_every_platform() {
    // The agreement holds across network/compute models, not just one.
    for platform in catalog::all_platforms() {
        let key = platform.key.clone();
        let (num, modeled) = both_engines(platform, App::paper_rd(3), 8, 4);
        assert_close(&format!("{key} total"), num.total, modeled.total, 0.35);
    }
}

#[test]
fn ns_engines_agree_within_modeling_tolerance() {
    let (num, modeled) = both_engines(catalog::ec2(), App::paper_ns(3), 8, 3);
    assert_close("ns total", num.total, modeled.total, 0.45);
    assert_close("ns assembly", num.assembly, modeled.assembly, 0.25);
}

#[test]
fn rd_iteration_law_tracks_measured_counts() {
    // The modeled engine's CG iteration law vs the numerical engine's
    // actual counts (CG + ILU(0)), across resolutions.
    for (ranks, axis) in [(8usize, 4usize), (8, 5), (27, 4)] {
        let req = RunRequest {
            fidelity: Fidelity::Numerical,
            ..RunRequest::new(catalog::puma(), App::paper_rd(2), ranks, axis)
        };
        let out = execute(&req).unwrap();
        let n = axis * (ranks as f64).cbrt().round() as usize;
        let law = profile::rd_cg_iters(n) as f64;
        let measured = out.krylov_iters;
        let rel = (law - measured).abs() / measured;
        assert!(rel < 0.6, "n = {n}: law {law} vs measured {measured}");
    }
}

#[test]
fn engines_rank_platforms_identically() {
    // Whatever their absolute error, both engines must order the platforms
    // the same way — that ordering is the paper's actual claim.
    let order_by = |fidelity: Fidelity| -> Vec<String> {
        let mut v: Vec<(String, f64)> = catalog::all_platforms()
            .into_iter()
            .map(|p| {
                let key = p.key.clone();
                let req = RunRequest {
                    fidelity,
                    ..RunRequest::new(p, App::paper_rd(2), 8, 4)
                };
                (key, execute(&req).unwrap().phases.total)
            })
            .collect();
        v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        v.into_iter().map(|(k, _)| k).collect()
    };
    assert_eq!(order_by(Fidelity::Numerical), order_by(Fidelity::Modeled));
}

#[test]
fn modeled_traffic_estimate_is_in_range_of_measured() {
    // The limit checks (lagrange's IB cap) rely on the modeled traffic
    // estimate; it must be the right order of magnitude vs the threaded
    // engine's actual accounting.
    let base = RunRequest {
        discard: 0,
        ..RunRequest::new(catalog::lagrange(), App::paper_rd(3), 27, 4)
    };
    let num = execute(&RunRequest {
        fidelity: Fidelity::Numerical,
        ..base.clone()
    })
    .unwrap();
    let modeled = execute(&RunRequest {
        fidelity: Fidelity::Modeled,
        ..base
    })
    .unwrap();
    let ratio = modeled.bytes_per_iteration / num.bytes_per_iteration;
    assert!((0.2..=5.0).contains(&ratio), "traffic ratio {ratio}");
}
