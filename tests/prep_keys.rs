//! Golden fixtures for the prepared-scenario key schema
//! (`hetero-prep/key/v1`) — the sibling of `tests/serve_keys.rs`.
//!
//! Two batteries, two failure modes they guard against:
//!
//! 1. **Byte pins.** The exact canonical text of hand-constructed RD and
//!    NS requests, every number a literal. If the encoding ever changes,
//!    these fail and force a deliberate [`PREP_KEY_SCHEMA`] bump instead
//!    of silently aliasing unrelated preparations.
//! 2. **Exclusion pins.** The prep key must cover *only* what the
//!    prepared artifacts are functions of (mesh spec, discretization
//!    orders, ranks, partition). A key that absorbed the platform or the
//!    seed would defeat cross-instance sharing; a key that dropped the
//!    rank count would alias different partitions. Both directions are
//!    pinned: excluded coordinates provably do not move the key, setup
//!    coordinates provably do.
//!
//! [`PREP_KEY_SCHEMA`]: hetero_hpc::canon::PREP_KEY_SCHEMA

use hetero_fem::bdf::BdfOrder;
use hetero_fem::element::ElementOrder;
use hetero_fem::ns::{MomentumSolver, NsConfig};
use hetero_fem::rd::{PrecondKind, RdConfig};
use hetero_hpc::canon::{prep_canonical, prep_key, sha256_hex, PREP_KEY_SCHEMA};
use hetero_hpc::{App, Fidelity, ResilienceSpec, RunRequest, TraceSpec};
use hetero_linalg::{KernelBackend, SolveOptions, SolverVariant};
use hetero_platform::catalog;
use hetero_simmpi::EngineKind;

/// A plain RD request with every setup coordinate a literal. The platform
/// comes from the catalog precisely because the key must not read it.
fn fixture_rd() -> RunRequest {
    RunRequest {
        platform: catalog::puma(),
        app: App::Rd(RdConfig {
            order: ElementOrder::Q2,
            bdf: BdfOrder::Two,
            t0: 1.0,
            dt: 0.01,
            steps: 5,
            precond: PrecondKind::Ilu0,
            solve: SolveOptions {
                rel_tol: 1e-8,
                abs_tol: 1e-12,
                max_iters: 500,
                variant: SolverVariant::Blocking,
                backend: KernelBackend::Assembled,
            },
        }),
        ranks: 8,
        per_rank_axis: 3,
        seed: 2012,
        discard: 0,
        threads_per_rank: 1,
        engine: EngineKind::default(),
        sched_workers: 0,
        fidelity: Fidelity::Numerical,
        solver_variant: None,
        kernel_backend: None,
        topology_override: None,
        cost_override: None,
        resilience: None,
        trace: None,
    }
}

fn fixture_ns() -> RunRequest {
    RunRequest {
        app: App::Ns(NsConfig {
            vel_order: ElementOrder::Q2,
            p_order: ElementOrder::Q1,
            bdf: BdfOrder::One,
            t0: 1.0,
            dt: 0.02,
            steps: 3,
            rho: 1.0,
            mu: 0.1,
            momentum_solver: MomentumSolver::Gmres { restart: 30 },
            precond_vel: PrecondKind::Jacobi,
            precond_p: PrecondKind::Ssor,
            solve_vel: SolveOptions {
                rel_tol: 1e-9,
                abs_tol: 1e-13,
                max_iters: 400,
                variant: SolverVariant::Overlapped,
                backend: KernelBackend::Assembled,
            },
            solve_p: SolveOptions {
                rel_tol: 1e-10,
                abs_tol: 1e-14,
                max_iters: 600,
                variant: SolverVariant::Blocking,
                backend: KernelBackend::Assembled,
            },
        }),
        ..fixture_rd()
    }
}

/// The exact canonical bytes of the RD fixture: 8 ranks block-partition
/// as 2x2x2, weak-scaled to a 6^3-cell unit cube, Q2 elements.
const RD_CANONICAL: &str = "schema=s:18:hetero-prep/key/v1;\
mesh={generator=e:unit-cube-hex;cells_x=i:6;cells_y=i:6;cells_z=i:6;};\
discretization={app=e:rd;order=e:q2;};\
ranks=i:8;per_rank_axis=i:3;\
partition={partitioner=e:block;parts_x=i:2;parts_y=i:2;parts_z=i:2;};";

/// The NS fixture differs only in the discretization group: the app tag
/// and the velocity/pressure element orders.
const NS_CANONICAL: &str = "schema=s:18:hetero-prep/key/v1;\
mesh={generator=e:unit-cube-hex;cells_x=i:6;cells_y=i:6;cells_z=i:6;};\
discretization={app=e:ns;vel_order=e:q2;p_order=e:q1;};\
ranks=i:8;per_rank_axis=i:3;\
partition={partitioner=e:block;parts_x=i:2;parts_y=i:2;parts_z=i:2;};";

#[test]
fn golden_rd_canonical_text_and_key() {
    assert_eq!(prep_canonical(&fixture_rd()), RD_CANONICAL);
    assert_eq!(
        prep_key(&fixture_rd()),
        format!("{PREP_KEY_SCHEMA}/{}", sha256_hex(RD_CANONICAL.as_bytes()))
    );
}

#[test]
fn golden_ns_canonical_text_and_key() {
    assert_eq!(prep_canonical(&fixture_ns()), NS_CANONICAL);
    assert_eq!(
        prep_key(&fixture_ns()),
        format!("{PREP_KEY_SCHEMA}/{}", sha256_hex(NS_CANONICAL.as_bytes()))
    );
}

#[test]
fn schema_tag_is_pinned_and_prefixes_every_key() {
    assert_eq!(PREP_KEY_SCHEMA, "hetero-prep/key/v1");
    assert!(prep_key(&fixture_rd()).starts_with("hetero-prep/key/v1/"));
}

/// Every coordinate a campaign sweeps — platform, seed, solver variant,
/// kernel backend, resilience cadence, host knobs, time-stepping — maps
/// to the *same* prep key, because none of them feed the prepared
/// artifacts. This is the property that lets one preparation serve a
/// whole sweep row.
#[test]
fn swept_coordinates_share_one_preparation() {
    let base_key = prep_key(&fixture_rd());
    let rd_cfg = |f: &dyn Fn(&mut RdConfig)| {
        let mut req = fixture_rd();
        if let App::Rd(cfg) = &mut req.app {
            f(cfg);
        }
        req
    };
    let variants: Vec<RunRequest> = vec![
        // Platform sweep: the paper's whole point is re-running one setup
        // across clouds, grids, and on-premises machines.
        RunRequest {
            platform: catalog::ec2(),
            ..fixture_rd()
        },
        RunRequest {
            platform: catalog::ellipse(),
            ..fixture_rd()
        },
        // Statistical replication and warm-up policy.
        RunRequest {
            seed: 99,
            ..fixture_rd()
        },
        RunRequest {
            discard: 5,
            ..fixture_rd()
        },
        // Host-only execution knobs.
        RunRequest {
            threads_per_rank: 4,
            ..fixture_rd()
        },
        RunRequest {
            engine: EngineKind::Threads,
            ..fixture_rd()
        },
        RunRequest {
            sched_workers: 3,
            ..fixture_rd()
        },
        // Engine selection and operator-path overrides.
        RunRequest {
            fidelity: Fidelity::Modeled,
            ..fixture_rd()
        },
        RunRequest {
            solver_variant: Some(SolverVariant::Pipelined),
            ..fixture_rd()
        },
        RunRequest {
            kernel_backend: Some(KernelBackend::MatrixFree),
            ..fixture_rd()
        },
        // Resilience policy, including the checkpoint cadence.
        RunRequest {
            resilience: Some(ResilienceSpec::spot_with_restart(
                &catalog::ec2(),
                1.0,
                1,
                50,
            )),
            ..fixture_rd()
        },
        RunRequest {
            resilience: Some(ResilienceSpec::spot_with_restart(
                &catalog::ec2(),
                1.0,
                7,
                50,
            )),
            ..fixture_rd()
        },
        // Tracing never perturbs a report, so it never splits a key.
        RunRequest {
            trace: Some(TraceSpec::default()),
            ..fixture_rd()
        },
        // Time-stepping parameters: the mesh/partition/DoF preparation
        // is step-count- and step-size-independent.
        rd_cfg(&|c| c.dt = 0.5),
        rd_cfg(&|c| c.steps = 50),
        rd_cfg(&|c| c.t0 = 7.0),
        rd_cfg(&|c| c.bdf = BdfOrder::One),
        rd_cfg(&|c| c.precond = PrecondKind::Jacobi),
        rd_cfg(&|c| c.solve.max_iters = 9),
    ];
    for (i, req) in variants.iter().enumerate() {
        assert_eq!(prep_key(req), base_key, "variant {i} must share the key");
    }
}

/// Coordinates the prepared artifacts *are* functions of must split the
/// key — aliasing here would hand a run the wrong mesh or partition.
#[test]
fn setup_coordinates_split_the_key() {
    let base_key = prep_key(&fixture_rd());
    let mut q1 = fixture_rd();
    if let App::Rd(cfg) = &mut q1.app {
        cfg.order = ElementOrder::Q1;
    }
    let splits: Vec<RunRequest> = vec![
        RunRequest {
            ranks: 16,
            ..fixture_rd()
        },
        RunRequest {
            per_rank_axis: 4,
            ..fixture_rd()
        },
        q1,
        fixture_ns(),
    ];
    let mut keys: Vec<String> = splits.iter().map(prep_key).collect();
    keys.push(base_key);
    keys.sort();
    let total = keys.len();
    keys.dedup();
    assert_eq!(keys.len(), total, "every setup coordinate must split");
}

/// The canonical text itself never names an excluded coordinate: a
/// grep-level proof, robust against encoder refactors, that platform,
/// seed, operator-path overrides, and host knobs cannot have leaked in.
#[test]
fn canonical_text_names_no_excluded_coordinate() {
    for req in [fixture_rd(), fixture_ns()] {
        let text = prep_canonical(&req);
        for forbidden in [
            "platform",
            "seed",
            "variant",
            "backend",
            "solver",
            "kernel",
            "thread",
            "engine",
            "fidelity",
            "resilience",
            "checkpoint",
            "cadence",
            "trace",
            "discard",
            "dt",
            "steps",
            "cost",
            "topology",
            "puma",
        ] {
            assert!(
                !text.contains(forbidden),
                "canonical text must not mention `{forbidden}`: {text}"
            );
        }
    }
}
