//! Prepared-scenario sharing must be invisible in every report byte.
//!
//! The cache (`hetero_hpc::prep`) shares the platform-independent setup —
//! mesh, partition, ghost plans, DoF maps, symbolic assembly structures,
//! modeled space views, harvested per-rank numerical preparations —
//! across every run with the same `hetero-prep/key/v1` key. These tests
//! drive the same requests three ways (sharing disabled, cold cache,
//! warm cache) across both SPMD engines, intra-rank thread counts 1 and
//! 4, and the fault-injected resilient path, and require the serialized
//! outcome to be byte-identical everywhere. The golden key fixtures live
//! in `tests/prep_keys.rs`; the plan-executor and serve layers add their
//! own batteries on top.

use hetero_fault::{FaultModel, SpotMarket};
use hetero_hpc::apps::App;
use hetero_hpc::prep;
use hetero_hpc::recovery::{execute_resilient, ResilienceSpec};
use hetero_hpc::run::{execute, Fidelity, RunRequest};
use hetero_platform::catalog;
use hetero_simmpi::EngineKind;
use std::sync::Mutex;

/// The scenario cache, its counters, and the disable switch are
/// process-global, so every test here serializes on this lock. (The
/// *results* are immune to interference by design — that's the point of
/// the battery — but the stats assertions are not.)
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn rd_req(engine: EngineKind, threads_per_rank: usize) -> RunRequest {
    RunRequest {
        fidelity: Fidelity::Numerical,
        engine,
        threads_per_rank,
        ..RunRequest::new(catalog::ec2(), App::paper_rd(3), 8, 3)
    }
}

fn ns_req(threads_per_rank: usize) -> RunRequest {
    RunRequest {
        fidelity: Fidelity::Numerical,
        threads_per_rank,
        ..RunRequest::new(catalog::ec2(), App::paper_ns(2), 8, 3)
    }
}

/// The fault-injected fixture of `tests/determinism.rs`: an EC2 spot
/// market compressed enough to revoke nodes inside the run.
fn faulty_rd_request(seed: u64, threads_per_rank: usize) -> RunRequest {
    let ec2 = catalog::ec2();
    let mut spec = ResilienceSpec::spot_with_restart(&ec2, 1.0, 1, 50);
    spec.faults = FaultModel {
        crashes: None,
        spot: Some(SpotMarket {
            epoch_seconds: 0.012,
            spike_probability: 0.35,
            ..SpotMarket::ec2_like(1.0)
        }),
        degradation: None,
    };
    RunRequest {
        fidelity: Fidelity::Numerical,
        threads_per_rank,
        seed,
        resilience: Some(spec),
        ..RunRequest::new(ec2, App::paper_rd(6), 8, 3)
    }
}

/// Executes `req` three ways — sharing disabled, cold cache, warm cache
/// (rank preparations harvested by the cold run) — and returns the three
/// serialized outcomes.
fn three_ways(req: &RunRequest) -> [String; 3] {
    let fresh = {
        let _off = prep::disable_sharing_scoped();
        format!("{:?}", execute(req).unwrap())
    };
    prep::clear_cache();
    let cold = format!("{:?}", execute(req).unwrap());
    let warm = format!("{:?}", execute(req).unwrap());
    [fresh, cold, warm]
}

#[test]
fn rd_reports_are_byte_identical_shared_vs_fresh() {
    let _g = lock();
    // One report for the whole matrix: sharing must not break what the
    // determinism battery already guarantees for engines and threads.
    let mut reports = Vec::new();
    for engine in [EngineKind::Cooperative, EngineKind::Threads] {
        for threads in [1, 4] {
            reports.extend(three_ways(&rd_req(engine, threads)));
        }
    }
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(r, &reports[0], "report {i} diverged");
    }
}

#[test]
fn ns_reports_are_byte_identical_shared_vs_fresh() {
    let _g = lock();
    let mut reports = Vec::new();
    for threads in [1, 4] {
        reports.extend(three_ways(&ns_req(threads)));
    }
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(r, &reports[0], "report {i} diverged");
    }
}

#[test]
fn fault_injected_resilient_reports_are_byte_identical_shared_vs_fresh() {
    let _g = lock();
    let mut reports = Vec::new();
    for threads in [1, 4] {
        let req = faulty_rd_request(7, threads);
        let fresh = {
            let _off = prep::disable_sharing_scoped();
            let out = execute_resilient(&req).unwrap();
            assert!(
                out.stats.faults_injected >= 1,
                "market never fired: {:?}",
                out.stats
            );
            format!("{out:?}")
        };
        prep::clear_cache();
        let cold = format!("{:?}", execute_resilient(&req).unwrap());
        let warm = format!("{:?}", execute_resilient(&req).unwrap());
        reports.extend([fresh, cold, warm]);
    }
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(r, &reports[0], "resilient report {i} diverged");
    }
}

/// A seed sweep over one scenario builds its preparation exactly once.
#[test]
fn seed_sweep_builds_one_scenario_and_hits_thereafter() {
    let _g = lock();
    prep::clear_cache();
    let (builds0, hits0, _) = prep::cache_stats();
    for seed in 0..4 {
        let req = RunRequest {
            seed,
            ..rd_req(EngineKind::default(), 1)
        };
        execute(&req).unwrap();
    }
    let (builds1, hits1, _) = prep::cache_stats();
    assert_eq!(builds1 - builds0, 1, "one build for the whole sweep");
    assert_eq!(hits1 - hits0, 3, "every later seed reuses it");
}

/// With sharing disabled nothing is built, looked up, or counted.
#[test]
fn disabled_sharing_touches_no_cache() {
    let _g = lock();
    let _off = prep::disable_sharing_scoped();
    assert!(!prep::sharing_enabled());
    assert!(prep::scenario_for(&rd_req(EngineKind::default(), 1)).is_none());
    let before = prep::cache_stats();
    execute(&rd_req(EngineKind::default(), 1)).unwrap();
    assert_eq!(prep::cache_stats(), before);
}
