//! End-to-end resilience guarantees: rollback loses time and dollars, never
//! accuracy; platform limits preempt retries; the cost model orders
//! protected spot against on-demand the way the market parameters say it
//! must.

use hetero_fault::{FaultModel, RecoveryMode, SpotMarket};
use hetero_hpc::apps::App;
use hetero_hpc::recovery::{execute_resilient, ResilienceSpec};
use hetero_hpc::run::{execute, Fidelity, RunRequest};
use hetero_platform::catalog;
use hetero_platform::limits::LimitViolation;

/// A market compressed to the virtual duration of small numerical runs
/// (~13 ms per 8-rank RD step), so revocations actually land mid-run.
fn compressed_market(spike_probability: f64) -> SpotMarket {
    SpotMarket {
        epoch_seconds: 0.012,
        spike_probability,
        ..SpotMarket::ec2_like(1.0)
    }
}

fn spot_request(app: App, checkpoint_every: usize, seed: u64) -> RunRequest {
    let ec2 = catalog::ec2();
    let mut spec = ResilienceSpec::spot_with_restart(&ec2, 1.0, checkpoint_every, 50);
    spec.faults = FaultModel {
        crashes: None,
        spot: Some(compressed_market(0.35)),
        degradation: None,
    };
    RunRequest {
        fidelity: Fidelity::Numerical,
        seed,
        resilience: Some(spec),
        ..RunRequest::new(ec2, app, 8, 3)
    }
}

#[test]
fn recovered_rd_matches_failure_free_norms() {
    let req = spot_request(App::paper_rd(6), 1, 2012);
    let out = execute_resilient(&req).unwrap();
    assert!(out.stats.completed, "restart budget must suffice");
    assert!(out.stats.faults_injected >= 1, "{:?}", out.stats);
    assert!(out.stats.lost_work_seconds > 0.0);
    assert!(out.stats.checkpoints_written >= 1);
    let v = out.outcome.unwrap().verification.unwrap();

    let mut plain = req.clone();
    plain.resilience = None;
    let ff = execute(&plain).unwrap().verification.unwrap();
    assert!(
        (v.linf - ff.linf).abs() <= 1e-12,
        "rollback must not move the Linf norm: {} vs {}",
        v.linf,
        ff.linf
    );
    assert!((v.l2 - ff.l2).abs() <= 1e-12);
}

#[test]
fn recovered_ns_matches_failure_free_norms() {
    // NS checkpoints carry three velocity histories plus the pressure; the
    // resumed trajectory must still be bitwise on the solver's path.
    let req = spot_request(App::paper_ns(4), 1, 97);
    let out = execute_resilient(&req).unwrap();
    assert!(out.stats.completed, "restart budget must suffice");
    assert!(out.stats.faults_injected >= 1, "{:?}", out.stats);
    let v = out.outcome.unwrap().verification.unwrap();

    let mut plain = req.clone();
    plain.resilience = None;
    let ff = execute(&plain).unwrap().verification.unwrap();
    assert!(
        (v.linf - ff.linf).abs() <= 1e-12,
        "rollback must not move the velocity Linf norm: {} vs {}",
        v.linf,
        ff.linf
    );
    assert!((v.l2 - ff.l2).abs() <= 1e-12);
}

#[test]
fn restart_on_oversized_ellipse_still_reports_launcher_failure() {
    // 729 ranks exceed ellipse's 512-rank mpiexec ceiling. A recovery
    // policy must not mask that as a retryable fault: the limit is checked
    // before the attempt loop and backoff never runs.
    let ellipse = catalog::ellipse();
    let req = RunRequest {
        resilience: Some(ResilienceSpec::spot_with_restart(&ellipse, 1.0, 4, 100)),
        ..RunRequest::new(ellipse, App::paper_rd(2), 729, 20)
    };
    assert!(matches!(
        execute_resilient(&req),
        Err(LimitViolation::LauncherFailure { .. })
    ));
}

#[test]
fn bounded_backoff_terminates_under_a_lethal_market() {
    // Revocations faster than any step can complete: no attempt progresses,
    // and the bounded restart budget must stop the loop (modeled engine,
    // so the lethal campaign costs microseconds of host time).
    let ec2 = catalog::ec2();
    let mut spec = ResilienceSpec::spot_with_restart(&ec2, 1.0, 1, 5);
    spec.faults = FaultModel {
        crashes: None,
        spot: Some(SpotMarket {
            epoch_seconds: 1e-4,
            spike_probability: 1.0,
            ..SpotMarket::ec2_like(1.0)
        }),
        degradation: None,
    };
    spec.policy.mode = RecoveryMode::Restart { max_restarts: 5 };
    let req = RunRequest {
        fidelity: Fidelity::Modeled,
        resilience: Some(spec),
        ..RunRequest::new(ec2, App::paper_rd(10), 216, 20)
    };
    let out = execute_resilient(&req).unwrap();
    assert!(!out.stats.completed);
    assert_eq!(out.stats.attempts, 6); // 1 launch + 5 restarts
    assert!(out.outcome.is_none());
    assert!(out.stats.backoff_seconds > 0.0, "backoff must be charged");
}

#[test]
fn checkpoint_cadence_trades_io_against_lost_work() {
    // Same hostile market, two cadences: checkpointing every step pays more
    // I/O but rolls back less work than checkpointing never.
    let every = execute_resilient(&spot_request(App::paper_rd(6), 1, 2012))
        .unwrap()
        .stats;
    let never = execute_resilient(&spot_request(App::paper_rd(6), 0, 2012))
        .unwrap()
        .stats;
    assert!(every.checkpoint_seconds > never.checkpoint_seconds);
    assert!(
        every.lost_work_seconds < never.lost_work_seconds,
        "every-step {} vs never {}",
        every.lost_work_seconds,
        never.lost_work_seconds
    );
}

#[test]
fn campaign_accounting_is_conserved() {
    // total = wait + backoff + compute + checkpoints + lost work, exactly.
    let out = execute_resilient(&spot_request(App::paper_rd(6), 1, 2012)).unwrap();
    let s = out.stats;
    let total = s.wait_seconds
        + s.backoff_seconds
        + s.compute_seconds
        + s.checkpoint_seconds
        + s.lost_work_seconds;
    assert!(
        (total - s.total_seconds).abs() < 1e-6,
        "accounting leak: {} vs {}",
        total,
        s.total_seconds
    );
}
