//! The M:N cooperative-scheduler battery.
//!
//! Pins the tentpole guarantee of the cooperative engine: the serialized
//! report of any numerical run is **byte-identical** between the legacy
//! one-OS-thread-per-rank engine and the M:N cooperative engine, at every
//! worker-pool size, with and without injected faults — and the
//! cooperative engine keeps that guarantee far past the old engine's rank
//! ceiling.

use hetero_fault::{FaultModel, SpotMarket};
use hetero_hpc::apps::App;
use hetero_hpc::recovery::{execute_resilient, ResilienceSpec};
use hetero_hpc::run::{execute, Fidelity, RunRequest};
use hetero_platform::limits::ExecutionLimits;
use hetero_platform::{catalog, PlatformSpec};
use hetero_simmpi::EngineKind;

fn ncpu() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// An EC2-flavoured platform with enough nodes for `ranks` ranks: same
/// network, compute, and jitter models, capacity raised so runs beyond the
/// catalog fleet's 1008-core cap exercise the scheduler at scale.
fn big_ec2(ranks: usize) -> PlatformSpec {
    let mut p = catalog::ec2();
    let nodes = ranks.div_ceil(p.cores_per_node).max(1);
    p.max_nodes = nodes;
    p.limits = ExecutionLimits::capacity_only(nodes * p.cores_per_node);
    p
}

/// The serialized report of a numerical RD run under the given engine.
fn rd_report(ranks: usize, steps: usize, engine: EngineKind, workers: usize) -> String {
    let req = RunRequest {
        fidelity: Fidelity::Numerical,
        engine,
        sched_workers: workers,
        ..RunRequest::new(catalog::ec2(), App::paper_rd(steps), ranks, 3)
    };
    format!("{:?}", execute(&req).unwrap())
}

/// The serialized report of a numerical NS run under the given engine.
fn ns_report(ranks: usize, steps: usize, engine: EngineKind, workers: usize) -> String {
    let req = RunRequest {
        fidelity: Fidelity::Numerical,
        engine,
        sched_workers: workers,
        ..RunRequest::new(catalog::ec2(), App::paper_ns(steps), ranks, 3)
    };
    format!("{:?}", execute(&req).unwrap())
}

#[test]
fn rd_report_identical_across_engines_at_27_ranks() {
    let baseline = rd_report(27, 2, EngineKind::Threads, 0);
    for workers in [1, 4, ncpu()] {
        assert_eq!(
            baseline,
            rd_report(27, 2, EngineKind::Cooperative, workers),
            "cooperative engine with {workers} worker(s) diverged from the thread engine"
        );
    }
}

#[test]
fn rd_report_identical_across_engines_at_216_ranks() {
    // The paper's mid rung; one step keeps the debug-mode A/B affordable.
    let baseline = rd_report(216, 1, EngineKind::Threads, 0);
    assert_eq!(baseline, rd_report(216, 1, EngineKind::Cooperative, 1));
    assert_eq!(baseline, rd_report(216, 1, EngineKind::Cooperative, 4));
}

#[test]
#[ignore = "scale: minutes of debug-mode wall time; the CI stress job runs this in release with -- --ignored"]
fn rd_report_identical_across_engines_at_1000_ranks() {
    // 1000 ranks is the paper's largest configuration and close to the old
    // engine's practical ceiling; one step keeps the A/B affordable.
    let baseline = rd_report(1000, 1, EngineKind::Threads, 0);
    assert_eq!(baseline, rd_report(1000, 1, EngineKind::Cooperative, 1));
    assert_eq!(baseline, rd_report(1000, 1, EngineKind::Cooperative, 4));
}

#[test]
fn ns_report_identical_across_engines_at_27_ranks() {
    let baseline = ns_report(27, 2, EngineKind::Threads, 0);
    for workers in [1, 4, ncpu()] {
        assert_eq!(
            baseline,
            ns_report(27, 2, EngineKind::Cooperative, workers),
            "cooperative engine with {workers} worker(s) diverged from the thread engine"
        );
    }
}

#[test]
#[ignore = "scale: minutes of debug-mode wall time; the CI stress job runs this in release with -- --ignored"]
fn ns_report_identical_across_engines_at_216_ranks() {
    // The heavier app (four solves per step) at the paper's mid rung; one
    // step keeps the A/B affordable.
    let baseline = ns_report(216, 1, EngineKind::Threads, 0);
    assert_eq!(baseline, ns_report(216, 1, EngineKind::Cooperative, 1));
    assert_eq!(baseline, ns_report(216, 1, EngineKind::Cooperative, 4));
}

/// An RD run on an EC2 spot fleet under a market compressed enough to
/// revoke nodes inside the tiny virtual duration of an 8-rank test run —
/// the same campaign the determinism suite pins across thread counts,
/// here pinned across *engines* and worker pools. This re-covers the
/// felled-attempt teardown race fixed when resilience landed: a revoked
/// node's ranks unwind mid-collective while their peers still hold
/// mailbox locks.
fn faulty_rd_request(seed: u64, engine: EngineKind, workers: usize) -> RunRequest {
    let ec2 = catalog::ec2();
    let mut spec = ResilienceSpec::spot_with_restart(&ec2, 1.0, 1, 50);
    spec.faults = FaultModel {
        crashes: None,
        spot: Some(SpotMarket {
            epoch_seconds: 0.012,
            spike_probability: 0.35,
            ..SpotMarket::ec2_like(1.0)
        }),
        degradation: None,
    };
    RunRequest {
        fidelity: Fidelity::Numerical,
        engine,
        sched_workers: workers,
        seed,
        resilience: Some(spec),
        ..RunRequest::new(ec2, App::paper_rd(6), 8, 3)
    }
}

#[test]
fn fault_injected_campaign_identical_across_engines_and_pools() {
    let run = |engine: EngineKind, workers: usize| -> String {
        let out = execute_resilient(&faulty_rd_request(2012, engine, workers)).unwrap();
        assert!(
            out.stats.faults_injected >= 1,
            "the market was supposed to bite: {:?}",
            out.stats
        );
        format!("{out:?}")
    };
    let baseline = run(EngineKind::Threads, 0);
    assert_eq!(baseline, run(EngineKind::Cooperative, 1));
    assert_eq!(baseline, run(EngineKind::Cooperative, 4));
}

#[test]
#[ignore = "scale: minutes of debug-mode wall time; the CI stress job runs this in release with -- --ignored"]
fn big_rd_run_at_8192_ranks_is_pool_independent() {
    // The acceptance bar: a real numerical RD run at 8192 ranks — double
    // the old thread engine's 4096-rank ceiling — completes on the
    // cooperative engine, and its serialized report is byte-identical
    // whether one worker or four drive the coroutines.
    let run = |workers: usize| -> String {
        let req = RunRequest {
            fidelity: Fidelity::Numerical,
            engine: EngineKind::Cooperative,
            sched_workers: workers,
            ..RunRequest::new(big_ec2(8192), App::paper_rd(1), 8192, 2)
        };
        format!("{:?}", execute(&req).unwrap())
    };
    assert_eq!(run(1), run(4));
}

#[test]
#[ignore = "scale: minutes of debug-mode wall time; the CI stress job runs this in release with -- --ignored"]
fn weak_scaling_extends_to_20_cubed_ranks() {
    // The paper's weak-scaling ladder stops at 10^3 = 1000 ranks; the
    // cooperative engine extends the same experiment to the 20^3 = 8000
    // rung with real numerics. Verification stays at discretization
    // accuracy, so the extended rung is a genuine solve, not a replay.
    let req = RunRequest {
        fidelity: Fidelity::Numerical,
        engine: EngineKind::Cooperative,
        ..RunRequest::new(big_ec2(8000), App::paper_rd(1), 8000, 2)
    };
    let out = execute(&req).unwrap();
    assert_eq!(out.ranks, 8000);
    assert!(out.phases.total > 0.0);
    let v = out.verification.expect("numerical runs verify");
    // Run with --nocapture to harvest the EXPERIMENTS.md extension row.
    println!(
        "weak scaling at 20^3 = 8000 ranks (ec2-flavoured fleet): total {:.2} s/iter \
         (assembly {:.2}, precond {:.2}, solve {:.2}); exact-solution linf error {:.1e}",
        out.phases.total, out.phases.assembly, out.phases.precond, out.phases.solve, v.linf
    );
    assert!(v.linf.is_finite() && v.linf < 1.0, "linf = {}", v.linf);
}
