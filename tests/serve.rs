//! Service-level guarantees of `hetero-serve`: dedup under a concurrent
//! submit storm, bitwise cache-hit fidelity across all three outcome
//! kinds (plain RD, plain NS, fault-injected resilient), quarantine-not-
//! crash on artifact corruption, and per-job panic isolation.

use hetero_fault::{FaultModel, SpotMarket};
use hetero_hpc::recovery::execute_resilient;
use hetero_hpc::{execute, App, Fidelity, ResilienceSpec, RunRequest, TraceSpec};
use hetero_platform::catalog;
use hetero_serve::{JobOutcome, ServeConfig, ServeError, ServeHandle};
use hetero_simmpi::ClusterTopology;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

fn tdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hetero-serve-test-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn rd_req(seed: u64) -> RunRequest {
    RunRequest {
        seed,
        ..RunRequest::new(catalog::puma(), App::smoke_rd(2), 8, 3)
    }
}

/// A small fault-injected numerical campaign (market compressed to the
/// run's virtual duration so revocations actually land — the pattern of
/// `tests/resilience.rs`).
fn resilient_req(seed: u64) -> RunRequest {
    let ec2 = catalog::ec2();
    let mut spec = ResilienceSpec::spot_with_restart(&ec2, 1.0, 1, 50);
    spec.faults = FaultModel {
        crashes: None,
        spot: Some(SpotMarket {
            epoch_seconds: 0.012,
            spike_probability: 0.35,
            ..SpotMarket::ec2_like(1.0)
        }),
        degradation: None,
    };
    RunRequest {
        fidelity: Fidelity::Numerical,
        seed,
        resilience: Some(spec),
        ..RunRequest::new(ec2, App::paper_rd(4), 8, 3)
    }
}

fn outcome_bytes(out: &JobOutcome) -> String {
    serde_json::to_string(out).unwrap()
}

#[test]
fn concurrent_submit_storm_executes_each_unique_key_once() {
    let dir = tdir("storm");
    let serve = Arc::new(ServeHandle::open(ServeConfig::new(&dir).with_workers(4)).unwrap());

    const THREADS: usize = 8;
    const UNIQUE: usize = 3;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let serve = Arc::clone(&serve);
            std::thread::spawn(move || {
                // Every thread submits every unique key, interleaved
                // differently per thread.
                let mut out = Vec::new();
                for i in 0..UNIQUE {
                    let k = (i + t) % UNIQUE;
                    let result = serve.submit_wait(&rd_req(100 + k as u64)).unwrap();
                    out.push((k, outcome_bytes(&result)));
                }
                out
            })
        })
        .collect();

    let mut by_key: Vec<Vec<String>> = vec![Vec::new(); UNIQUE];
    for h in handles {
        for (k, bytes) in h.join().unwrap() {
            by_key[k].push(bytes);
        }
    }

    // Every waiter of a key saw byte-identical outcomes...
    for (k, outcomes) in by_key.iter().enumerate() {
        assert_eq!(outcomes.len(), THREADS);
        assert!(
            outcomes.iter().all(|o| o == &outcomes[0]),
            "divergent outcomes for key {k}"
        );
    }
    // ...and those bytes match a fresh direct execution.
    for (k, outcomes) in by_key.iter().enumerate() {
        let direct = JobOutcome::Completed(execute(&rd_req(100 + k as u64)).unwrap());
        assert_eq!(outcomes[0], outcome_bytes(&direct));
    }

    // Exactly one execution per unique key: every other submission was a
    // cache hit or coalesced onto the in-flight execution.
    let m = serve.metrics();
    assert_eq!(m.counter("serve.batch.jobs"), UNIQUE as f64, "executions");
    assert_eq!(m.counter("serve.jobs.submitted"), (THREADS * UNIQUE) as f64);
    assert_eq!(
        m.counter("serve.cache.hits") + m.counter("serve.dedup.coalesced"),
        (THREADS * UNIQUE - UNIQUE) as f64,
        "every duplicate submission either hit the cache or coalesced"
    );

    Arc::try_unwrap(serve).ok().unwrap().shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn cache_hits_are_bitwise_equal_to_fresh_execution() {
    let dir = tdir("bitwise");
    let serve = ServeHandle::open(ServeConfig::new(&dir)).unwrap();

    // RD, NS, and a fault-injected resilient campaign — all three outcome
    // kinds must serve identical bytes hot and cold.
    let rd = rd_req(7);
    let ns = RunRequest {
        seed: 9,
        ..RunRequest::new(catalog::puma(), App::paper_ns(2), 8, 3)
    };
    let res = resilient_req(2012);

    for (name, req) in [("rd", &rd), ("ns", &ns), ("resilient", &res)] {
        let cold = serve.submit_wait(req).unwrap();
        let hot = serve.submit_wait(req).unwrap();
        assert_eq!(
            outcome_bytes(&cold),
            outcome_bytes(&hot),
            "{name}: hot outcome must be byte-identical to cold"
        );
        let direct = if req.resilience.is_some() {
            JobOutcome::Resilient(execute_resilient(req).unwrap())
        } else {
            JobOutcome::Completed(execute(req).unwrap())
        };
        assert_eq!(
            outcome_bytes(&hot),
            outcome_bytes(&direct),
            "{name}: cached outcome must match direct execution"
        );
    }
    // The resilient campaign really injected faults (the cache served a
    // nontrivial recovery record, not a failure-free run).
    match serve.submit_wait(&res).unwrap().as_ref() {
        JobOutcome::Resilient(r) => {
            assert!(r.stats.completed);
            assert!(r.stats.faults_injected >= 1);
        }
        other => panic!("expected resilient outcome, got {other:?}"),
    }

    let m = serve.metrics();
    assert_eq!(m.counter("serve.cache.misses"), 3.0);
    assert!(m.counter("serve.cache.hits") >= 4.0);

    serve.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn traced_and_untraced_requests_are_the_same_job() {
    let dir = tdir("traced");
    let serve = ServeHandle::open(ServeConfig::new(&dir)).unwrap();
    let plain = rd_req(11);
    let traced = RunRequest {
        trace: Some(TraceSpec::messages()),
        ..plain.clone()
    };
    let a = serve.submit_wait(&plain).unwrap();
    let b = serve.submit_wait(&traced).unwrap();
    assert_eq!(outcome_bytes(&a), outcome_bytes(&b));
    let m = serve.metrics();
    assert_eq!(m.counter("serve.cache.hits"), 1.0);
    serve.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_artifact_is_quarantined_and_reexecuted() {
    let dir = tdir("corrupt");
    let req = rd_req(21);
    let cold_bytes;
    {
        let serve = ServeHandle::open(ServeConfig::new(&dir)).unwrap();
        cold_bytes = outcome_bytes(&serve.submit_wait(&req).unwrap());
        serve.shutdown();
    }
    // Corrupt the single cached artifact on disk.
    let cache_dir = dir.join("cache");
    let artifact = fs::read_dir(&cache_dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "json"))
        .expect("one artifact cached");
    let mut bytes = fs::read(&artifact).unwrap();
    let pos = bytes.len() / 2;
    bytes[pos] = if bytes[pos] == b'3' { b'4' } else { b'3' };
    fs::write(&artifact, &bytes).unwrap();

    let serve = ServeHandle::open(ServeConfig::new(&dir)).unwrap();
    let redone = serve.submit_wait(&req).unwrap();
    assert_eq!(outcome_bytes(&redone), cold_bytes, "re-execution heals");
    let m = serve.metrics();
    assert_eq!(m.counter("serve.cache.quarantined"), 1.0);
    assert!(
        cache_dir.join("quarantine").exists(),
        "bad artifact preserved for diagnosis"
    );
    // And the heal is durable: the next probe hits.
    let hot = serve.submit_wait(&req).unwrap();
    assert_eq!(outcome_bytes(&hot), cold_bytes);
    assert_eq!(serve.metrics().counter("serve.cache.hits"), 1.0);
    serve.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn panicking_job_fails_alone_service_survives() {
    let dir = tdir("panic");
    let serve = ServeHandle::open(ServeConfig::new(&dir)).unwrap();
    // An override topology too small for the rank count trips an assert
    // inside the engine — a stand-in for any engine bug.
    let poison = RunRequest {
        topology_override: Some(ClusterTopology::uniform(1, 2)),
        ..rd_req(31)
    };
    let err = serve.submit_wait(&poison).unwrap_err();
    assert!(
        matches!(err, ServeError::JobPanicked(_)),
        "expected panic report, got {err:?}"
    );
    // The pool survived: a healthy job still executes.
    let ok = serve.submit_wait(&rd_req(32)).unwrap();
    assert!(matches!(ok.as_ref(), JobOutcome::Completed(_)));
    let m = serve.metrics();
    assert_eq!(m.counter("serve.jobs.failed"), 1.0);
    assert_eq!(m.counter("serve.jobs.completed"), 1.0);
    serve.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn limit_violations_are_served_and_cached() {
    let dir = tdir("limits");
    let serve = ServeHandle::open(ServeConfig::new(&dir)).unwrap();
    // puma cannot run 216 ranks — the paper's capacity failure mode, as
    // deterministic (and as cacheable) as a successful run.
    let req = RunRequest::new(catalog::puma(), App::paper_rd(2), 216, 20);
    let cold = serve.submit_wait(&req).unwrap();
    assert!(matches!(cold.as_ref(), JobOutcome::Rejected(_)));
    let hot = serve.submit_wait(&req).unwrap();
    assert_eq!(outcome_bytes(&cold), outcome_bytes(&hot));
    assert_eq!(serve.metrics().counter("serve.cache.hits"), 1.0);
    serve.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// Jobs differing only in solver-variant/kernel-backend overrides are
/// adjacent in the queue but must not be treated as interchangeable by
/// the claim-grouping worker (the shape pin itself lives in the
/// `batch_shape` unit tests): every override still computes its own
/// report, byte-identical to a fresh direct execution.
#[test]
fn operator_path_overrides_stay_distinct_through_batching() {
    use hetero_linalg::{KernelBackend, SolverVariant};

    let dir = tdir("overrides");
    let serve = ServeHandle::open(ServeConfig::new(&dir).with_workers(1)).unwrap();

    let variants: Vec<RunRequest> = vec![
        rd_req(7),
        RunRequest {
            solver_variant: Some(SolverVariant::Pipelined),
            ..rd_req(7)
        },
        RunRequest {
            kernel_backend: Some(KernelBackend::MatrixFree),
            ..rd_req(7)
        },
    ];
    for req in &variants {
        let served = serve.submit_wait(req).unwrap();
        let direct = JobOutcome::Completed(execute(req).unwrap());
        assert_eq!(outcome_bytes(&served), outcome_bytes(&direct));
    }
    // Three distinct keys, three executions: none coalesced or cached
    // onto another override's result.
    let m = serve.metrics();
    assert_eq!(m.counter("serve.batch.jobs"), variants.len() as f64);
    assert_eq!(m.counter("serve.cache.hits"), 0.0);

    serve.shutdown();
    let _ = fs::remove_dir_all(&dir);
}
