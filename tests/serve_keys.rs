//! Golden fixtures for the canonical key schema (`hetero-serve/key/v1`).
//!
//! The fixtures below pin the exact canonical text and key of two
//! hand-constructed requests, every number a literal. Because the
//! canonical encoder names every field with a string literal in a fixed
//! order, renaming or reordering Rust fields cannot change these strings
//! — and if the encoding itself is ever changed, these tests fail,
//! forcing a deliberate [`KEY_SCHEMA`] bump instead of a silent cache
//! corruption.
//!
//! [`KEY_SCHEMA`]: hetero_hpc::canon::KEY_SCHEMA

use hetero_fault::{
    Backoff, CrashProcess, DegradationModel, FaultModel, RecoveryMode, ResiliencePolicy, SpotMarket,
};
use hetero_fem::bdf::BdfOrder;
use hetero_fem::element::ElementOrder;
use hetero_fem::ns::{MomentumSolver, NsConfig};
use hetero_fem::rd::{PrecondKind, RdConfig};
use hetero_hpc::canon::{canonical_request, request_key, KEY_SCHEMA};
use hetero_hpc::{App, Fidelity, ResilienceSpec, RunRequest};
use hetero_linalg::{KernelBackend, SolveOptions, SolverVariant};
use hetero_platform::cost::{Billing, CostModel};
use hetero_platform::limits::ExecutionLimits;
use hetero_platform::scheduler::{QueueModel, SchedulerKind};
use hetero_platform::spec::AccessKind;
use hetero_platform::spot::FleetStrategy;
use hetero_platform::PlatformSpec;
use hetero_simmpi::{ClusterTopology, ComputeModel, EngineKind, NetworkModel};

/// A platform with every number a literal — deliberately NOT from
/// `catalog`, so the fixture pins the schema, not the catalog's values.
fn fixture_platform() -> PlatformSpec {
    PlatformSpec {
        key: "fixture".to_string(),
        description: "golden fixture platform".to_string(),
        cpu_model: "Fixture CPU".to_string(),
        cores_per_node: 4,
        max_nodes: 8,
        ram_per_core_gib: 2.0,
        compute: ComputeModel {
            flops_per_sec: 1e9,
            mem_bw: 4e9,
        },
        network: NetworkModel {
            name: "FixNet".to_string(),
            latency: 50e-6,
            latency_intra: 1e-6,
            node_bw: 117e6,
            intra_bw: 3e9,
            switch_radix: 48,
            oversubscription: 0.0,
            cross_group_lat_mult: 1.0,
            cross_group_bw_mult: 1.0,
            jitter_sigma: 0.0,
        },
        access: AccessKind::UserSpace,
        scheduler: SchedulerKind::PbsTorque,
        queue: QueueModel {
            base: 60.0,
            per_node: 10.0,
            spread: 0.0,
            size_exponent: 1.0,
        },
        cost: CostModel {
            billing: Billing::PerCoreHour(0.05),
            note: "fixture".to_string(),
        },
        limits: ExecutionLimits {
            max_cores: 32,
            max_launchable_ranks: None,
            adapter_volume_cap: None,
        },
        node_mtbf_hours: 1000.0,
    }
}

/// Fixture 1: a plain RD request, no options.
fn fixture_rd() -> RunRequest {
    RunRequest {
        platform: fixture_platform(),
        app: App::Rd(RdConfig {
            order: ElementOrder::Q2,
            bdf: BdfOrder::Two,
            t0: 1.0,
            dt: 0.01,
            steps: 5,
            precond: PrecondKind::Ilu0,
            solve: SolveOptions {
                rel_tol: 1e-8,
                abs_tol: 1e-12,
                max_iters: 500,
                variant: SolverVariant::Blocking,
                backend: KernelBackend::Assembled,
            },
        }),
        ranks: 8,
        per_rank_axis: 3,
        seed: 2012,
        discard: 0,
        threads_per_rank: 1,
        engine: EngineKind::default(),
        sched_workers: 0,
        fidelity: Fidelity::Numerical,
        solver_variant: None,
        kernel_backend: None,
        topology_override: None,
        cost_override: None,
        resilience: None,
        trace: None,
    }
}

/// Fixture 2: an NS request exercising every optional branch of the
/// encoder — GMRES momentum solver, solver/kernel overrides, grouped
/// topology override, per-node-hour cost override, and a resilience spec
/// with all three fault processes active.
fn fixture_ns_resilient() -> RunRequest {
    RunRequest {
        platform: fixture_platform(),
        app: App::Ns(NsConfig {
            vel_order: ElementOrder::Q2,
            p_order: ElementOrder::Q1,
            bdf: BdfOrder::One,
            t0: 1.0,
            dt: 0.02,
            steps: 3,
            rho: 1.0,
            mu: 0.1,
            momentum_solver: MomentumSolver::Gmres { restart: 30 },
            precond_vel: PrecondKind::Jacobi,
            precond_p: PrecondKind::Ssor,
            solve_vel: SolveOptions {
                rel_tol: 1e-9,
                abs_tol: 1e-13,
                max_iters: 400,
                variant: SolverVariant::Overlapped,
                backend: KernelBackend::Assembled,
            },
            solve_p: SolveOptions {
                rel_tol: 1e-10,
                abs_tol: 1e-14,
                max_iters: 600,
                variant: SolverVariant::Blocking,
                backend: KernelBackend::Assembled,
            },
        }),
        ranks: 8,
        per_rank_axis: 3,
        seed: 7,
        discard: 1,
        threads_per_rank: 1,
        engine: EngineKind::default(),
        sched_workers: 0,
        fidelity: Fidelity::Modeled,
        solver_variant: Some(SolverVariant::Pipelined),
        kernel_backend: Some(KernelBackend::MatrixFree),
        topology_override: Some(ClusterTopology::with_groups(4, vec![0, 0, 1, 1])),
        cost_override: Some(CostModel {
            billing: Billing::PerNodeHour {
                rate: 1.60,
                cores_per_node: 8,
            },
            note: "override".to_string(),
        }),
        resilience: Some(ResilienceSpec {
            policy: ResiliencePolicy {
                checkpoint_every: 2,
                io_bandwidth: 200e6,
                mode: RecoveryMode::Restart { max_restarts: 5 },
                backoff: Backoff {
                    base_seconds: 1.0,
                    factor: 2.0,
                    cap_seconds: 60.0,
                },
            },
            faults: FaultModel {
                crashes: Some(CrashProcess {
                    node_mtbf_hours: 500.0,
                }),
                spot: Some(SpotMarket {
                    epoch_seconds: 300.0,
                    base_price: 0.24,
                    max_bid: 0.60,
                    spike_probability: 0.05,
                    capacity_range: (2, 6),
                }),
                degradation: Some(DegradationModel {
                    mean_interval_seconds: 900.0,
                    duration_seconds: 120.0,
                    slowdown: 0.5,
                }),
            },
            strategy: FleetStrategy::SpotMix {
                groups: 3,
                max_bid: 0.60,
            },
            incremental_checkpoints: true,
        }),
        trace: None,
    }
}

#[rustfmt::skip]
const GOLDEN_RD_TEXT: &str = "schema=s:19:hetero-serve/key/v1;app={rd={order=e:q2;bdf=e:bdf2;t0=f:3ff0000000000000;dt=f:3f847ae147ae147b;steps=i:5;precond=e:ilu0;solve={rel_tol=f:3e45798ee2308c3a;abs_tol=f:3d719799812dea11;max_iters=i:500;variant=e:blocking;backend=e:assembled;};};};platform={key=s:7:fixture;cores_per_node=i:4;max_nodes=i:8;ram_per_core_gib=f:4000000000000000;compute={flops_per_sec=f:41cdcd6500000000;mem_bw=f:41edcd6500000000;};network={latency=f:3f0a36e2eb1c432d;latency_intra=f:3eb0c6f7a0b5ed8d;node_bw=f:419be51d00000000;intra_bw=f:41e65a0bc0000000;switch_radix=i:48;oversubscription=f:0000000000000000;cross_group_lat_mult=f:3ff0000000000000;cross_group_bw_mult=f:3ff0000000000000;jitter_sigma=f:0000000000000000;};access=e:user-space;scheduler=e:pbs-torque;queue={base=f:404e000000000000;per_node=f:4024000000000000;spread=f:0000000000000000;size_exponent=f:3ff0000000000000;};cost={per_core_hour={rate=f:3fa999999999999a;};};limits={max_cores=i:32;max_launchable_ranks=-;adapter_volume_cap=-;};node_mtbf_hours=f:408f400000000000;};ranks=i:8;per_rank_axis=i:3;seed=i:2012;discard=i:0;fidelity=e:numerical;solver_variant=-;kernel_backend=-;topology_override=-;cost_override=-;resilience=-;";
const GOLDEN_RD_KEY: &str =
    "hetero-serve/key/v1/1bf065914be227bae9ef9e1a2b2cf60d92aaa1b5b8a7c574fb62fac862285f16";
#[rustfmt::skip]
const GOLDEN_NS_TEXT: &str = "schema=s:19:hetero-serve/key/v1;app={ns={vel_order=e:q2;p_order=e:q1;bdf=e:bdf1;t0=f:3ff0000000000000;dt=f:3f947ae147ae147b;steps=i:3;rho=f:3ff0000000000000;mu=f:3fb999999999999a;momentum_solver={kind=e:gmres;restart=i:30;};precond_vel=e:jacobi;precond_p=e:ssor;solve_vel={rel_tol=f:3e112e0be826d695;abs_tol=f:3d3c25c268497682;max_iters=i:400;variant=e:overlapped;backend=e:assembled;};solve_p={rel_tol=f:3ddb7cdfd9d7bdbb;abs_tol=f:3d06849b86a12b9b;max_iters=i:600;variant=e:blocking;backend=e:assembled;};};};platform={key=s:7:fixture;cores_per_node=i:4;max_nodes=i:8;ram_per_core_gib=f:4000000000000000;compute={flops_per_sec=f:41cdcd6500000000;mem_bw=f:41edcd6500000000;};network={latency=f:3f0a36e2eb1c432d;latency_intra=f:3eb0c6f7a0b5ed8d;node_bw=f:419be51d00000000;intra_bw=f:41e65a0bc0000000;switch_radix=i:48;oversubscription=f:0000000000000000;cross_group_lat_mult=f:3ff0000000000000;cross_group_bw_mult=f:3ff0000000000000;jitter_sigma=f:0000000000000000;};access=e:user-space;scheduler=e:pbs-torque;queue={base=f:404e000000000000;per_node=f:4024000000000000;spread=f:0000000000000000;size_exponent=f:3ff0000000000000;};cost={per_core_hour={rate=f:3fa999999999999a;};};limits={max_cores=i:32;max_launchable_ranks=-;adapter_volume_cap=-;};node_mtbf_hours=f:408f400000000000;};ranks=i:8;per_rank_axis=i:3;seed=i:7;discard=i:1;fidelity=e:modeled;solver_variant=e:pipelined;kernel_backend=e:matrix-free;topology_override={cores_per_node=i:4;groups=[i:0,i:0,i:1,i:1,];};cost_override={per_node_hour={rate=f:3ff999999999999a;cores_per_node=i:8;};};resilience={policy={checkpoint_every=i:2;io_bandwidth=f:41a7d78400000000;mode={kind=e:restart;max_restarts=i:5;};backoff={base_seconds=f:3ff0000000000000;factor=f:4000000000000000;cap_seconds=f:404e000000000000;};};faults={crashes={node_mtbf_hours=f:407f400000000000;};spot={epoch_seconds=f:4072c00000000000;base_price=f:3fceb851eb851eb8;max_bid=f:3fe3333333333333;spike_probability=f:3fa999999999999a;capacity_lo=i:2;capacity_hi=i:6;};degradation={mean_interval_seconds=f:408c200000000000;duration_seconds=f:405e000000000000;slowdown=f:3fe0000000000000;};};strategy={kind=e:spot-mix;groups=i:3;max_bid=f:3fe3333333333333;};incremental_checkpoints=b:1;};";
const GOLDEN_NS_KEY: &str =
    "hetero-serve/key/v1/00d2a275772c32149829c953b36cdb9236781e8a681e1998a8c61dc39da5f7ea";

#[test]
fn golden_rd_canonical_text_and_key() {
    let req = fixture_rd();
    assert_eq!(canonical_request(&req), GOLDEN_RD_TEXT);
    assert_eq!(request_key(&req), GOLDEN_RD_KEY);
}

#[test]
fn golden_ns_resilient_canonical_text_and_key() {
    let req = fixture_ns_resilient();
    assert_eq!(canonical_request(&req), GOLDEN_NS_TEXT);
    assert_eq!(request_key(&req), GOLDEN_NS_KEY);
}

#[test]
fn key_is_schema_prefixed_hash_of_canonical_text() {
    let req = fixture_rd();
    assert_eq!(
        request_key(&req),
        format!(
            "{KEY_SCHEMA}/{}",
            hetero_hpc::canon::sha256_hex(canonical_request(&req).as_bytes())
        )
    );
}

#[test]
fn every_fixture_field_is_reachable_from_the_text() {
    // Spot checks that the canonical text is the human-diffable record it
    // claims to be: semantic values appear in recognizable form.
    let text = canonical_request(&fixture_ns_resilient());
    assert!(text.contains("schema=s:19:hetero-serve/key/v1;"));
    assert!(text.contains("momentum_solver={kind=e:gmres;restart=i:30;};"));
    assert!(text.contains("solver_variant=e:pipelined;"));
    assert!(text.contains("kernel_backend=e:matrix-free;"));
    assert!(text.contains("groups=[i:0,i:0,i:1,i:1,];"));
    assert!(text.contains("incremental_checkpoints=b:1;"));
    // Display-only strings never leak into the canonical text.
    assert!(!text.contains("golden fixture platform"));
    assert!(!text.contains("Fixture CPU"));
    assert!(!text.contains("FixNet"));
}
