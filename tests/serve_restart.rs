//! Crash-recovery guarantees: a killed-and-restarted service loses no
//! acknowledged job and re-executes no unique key whose result was
//! already durably cached.
//!
//! The first test crafts the on-disk state directly through the public
//! `Journal` / `ResultCache` APIs, so every crash window is exercised
//! deterministically (no timing races). The second performs a real
//! `kill()` mid-flight and checks the recovery accounting identity.

use hetero_hpc::canon::request_key;
use hetero_hpc::{execute, App, RunRequest};
use hetero_platform::catalog;
use hetero_serve::{JobOutcome, Journal, ResultCache, ServeConfig, ServeHandle};
use std::fs;
use std::path::PathBuf;

fn tdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "hetero-serve-restart-{name}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

fn rd_req(seed: u64) -> RunRequest {
    RunRequest {
        seed,
        ..RunRequest::new(catalog::puma(), App::smoke_rd(2), 8, 3)
    }
}

fn outcome_bytes(out: &JobOutcome) -> String {
    serde_json::to_string(out).unwrap()
}

/// Crafts a journal + cache capturing every crash window at once:
///
/// * job 0 — fully acknowledged before the crash (must NOT reappear);
/// * job 1 — crashed between cache artifact and ack (must be re-acked
///   from cache, NOT re-executed);
/// * job 2 — crashed before any artifact (must be re-executed);
/// * job 3 — same key as job 2, coalesced (must share job 2's outcome).
#[test]
fn replay_finishes_exactly_the_pending_work() {
    let dir = tdir("windows");
    let (req_a, req_b, req_c) = (rd_req(50), rd_req(51), rd_req(52));
    let (key_a, key_b, key_c) = (
        request_key(&req_a),
        request_key(&req_b),
        request_key(&req_c),
    );

    let acked = JobOutcome::Completed(execute(&req_a).unwrap());
    let cached_unacked = JobOutcome::Completed(execute(&req_b).unwrap());
    {
        let (mut journal, pending, _) = Journal::open(&dir.join("journal.log"), false).unwrap();
        assert!(pending.is_empty());
        journal.append_submit(0, &key_a, &req_a).unwrap();
        journal.append_submit(1, &key_b, &req_b).unwrap();
        journal.append_submit(2, &key_c, &req_c).unwrap();
        journal.append_submit(3, &key_c, &req_c).unwrap();
        journal.append_ack(0).unwrap();

        let mut cache = ResultCache::open(&dir.join("cache")).unwrap();
        cache.store(&key_a, &acked).unwrap();
        cache.store(&key_b, &cached_unacked).unwrap();
        // key_c: no artifact — the crash hit before the worker finished.
    }

    let serve = ServeHandle::open(ServeConfig::new(&dir)).unwrap();
    let recovered = serve.recovered_jobs();
    assert_eq!(recovered, vec![1, 2, 3], "acked job 0 must not replay");

    // Job 1 completed from cache without re-execution; jobs 2 and 3 share
    // one real execution.
    let out1 = serve.wait(1).unwrap();
    let out2 = serve.wait(2).unwrap();
    let out3 = serve.wait(3).unwrap();
    assert_eq!(outcome_bytes(&out1), outcome_bytes(&cached_unacked));
    let direct_c = JobOutcome::Completed(execute(&req_c).unwrap());
    assert_eq!(outcome_bytes(&out2), outcome_bytes(&direct_c));
    assert_eq!(outcome_bytes(&out3), outcome_bytes(&direct_c));

    let m = serve.metrics();
    assert_eq!(m.counter("serve.recovered.replayed"), 3.0);
    assert_eq!(m.counter("serve.recovered.from_cache"), 1.0);
    assert_eq!(m.counter("serve.batch.jobs"), 1.0, "only key_c re-executes");

    serve.shutdown();

    // Recovery is itself durable: a third startup finds nothing pending.
    let serve = ServeHandle::open(ServeConfig::new(&dir)).unwrap();
    assert!(serve.recovered_jobs().is_empty());
    serve.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// A real kill mid-flight: however far the single worker got, the second
/// session's executions must equal exactly the replayed jobs that were
/// not already cached, and every key ends up served with bytes identical
/// to a direct execution.
#[test]
fn kill_and_restart_loses_nothing_and_repeats_nothing() {
    let dir = tdir("kill");
    let reqs: Vec<RunRequest> = (60..63).map(rd_req).collect();

    let submitted: Vec<u64> = {
        let serve =
            ServeHandle::open(ServeConfig::new(&dir).with_workers(1).with_batch_max(1)).unwrap();
        let ids = reqs.iter().map(|r| serve.submit(r).unwrap()).collect();
        // Kill immediately: the worker may be anywhere from "not started"
        // to "all three done". Every window must recover.
        serve.kill();
        ids
    };
    assert_eq!(submitted.len(), 3);

    let serve = ServeHandle::open(ServeConfig::new(&dir)).unwrap();
    let replayed = serve.recovered_jobs().len() as f64;
    for id in serve.recovered_jobs() {
        serve.wait(id).unwrap();
    }
    let m = serve.metrics();
    // The accounting identity: replayed = re-acked-from-cache + re-executed.
    assert_eq!(
        m.counter("serve.batch.jobs"),
        replayed - m.counter("serve.recovered.from_cache"),
        "re-executions must be exactly the replayed jobs not in cache"
    );

    // No acked job was lost and no completed key repeats: every request
    // is now a cache hit with bytes identical to a fresh execution.
    for req in &reqs {
        let hot = serve.submit_wait(req).unwrap();
        let direct = JobOutcome::Completed(execute(req).unwrap());
        assert_eq!(outcome_bytes(&hot), outcome_bytes(&direct));
    }
    let m = serve.metrics();
    assert_eq!(m.counter("serve.cache.hits"), 3.0);
    assert_eq!(
        m.counter("serve.batch.jobs") + m.counter("serve.recovered.from_cache"),
        replayed
    );

    serve.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// Back-to-back kills (double crash) still converge: the journal keeps
/// owing the unfinished jobs until some session finally acks them.
#[test]
fn double_crash_still_converges() {
    let dir = tdir("double");
    let reqs: Vec<RunRequest> = (70..74).map(rd_req).collect();
    {
        let serve =
            ServeHandle::open(ServeConfig::new(&dir).with_workers(1).with_batch_max(1)).unwrap();
        for r in &reqs {
            serve.submit(r).unwrap();
        }
        serve.kill();
    }
    {
        // Second session crashes too, immediately.
        ServeHandle::open(ServeConfig::new(&dir).with_workers(1).with_batch_max(1))
            .unwrap()
            .kill();
    }
    let serve = ServeHandle::open(ServeConfig::new(&dir)).unwrap();
    for id in serve.recovered_jobs() {
        serve.wait(id).unwrap();
    }
    for req in &reqs {
        let hot = serve.submit_wait(req).unwrap();
        let direct = JobOutcome::Completed(execute(req).unwrap());
        assert_eq!(outcome_bytes(&hot), outcome_bytes(&direct));
    }
    assert_eq!(serve.metrics().counter("serve.cache.hits"), 4.0);
    serve.shutdown();
    let _ = fs::remove_dir_all(&dir);
}
