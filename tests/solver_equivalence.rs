//! The solver-variant contract, end to end through the harness: the
//! overlapped schedule reorders communication but never arithmetic, the
//! pipelined schedule trades one fused reduction per iteration for a
//! mildly reassociated recurrence, and the default blocking path is
//! untouched by the new machinery.

use hetero_hpc::apps::App;
use hetero_hpc::run::{execute, Fidelity, RunRequest};
use hetero_linalg::SolverVariant;
use hetero_platform::catalog;

fn rd_numerical(variant: Option<SolverVariant>, threads: usize) -> RunRequest {
    RunRequest {
        fidelity: Fidelity::Numerical,
        threads_per_rank: threads,
        solver_variant: variant,
        discard: 1,
        ..RunRequest::new(catalog::ec2(), App::paper_rd(3), 8, 3)
    }
}

#[test]
fn blocking_override_is_the_identity() {
    // `Some(Blocking)` must be indistinguishable from `None`: the override
    // is folded into the app config, not a separate code path.
    let a = execute(&rd_numerical(None, 1)).unwrap();
    let b = execute(&rd_numerical(Some(SolverVariant::Blocking), 1)).unwrap();
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn overlapped_rd_values_match_blocking_bitwise() {
    // Same iterates, same iteration counts, same errors — only the
    // simulated communication schedule (and hence phase times) may move.
    let a = execute(&rd_numerical(None, 1)).unwrap();
    let b = execute(&rd_numerical(Some(SolverVariant::Overlapped), 1)).unwrap();
    let (va, vb) = (a.verification.unwrap(), b.verification.unwrap());
    assert_eq!(va.linf.to_bits(), vb.linf.to_bits());
    assert_eq!(va.l2.to_bits(), vb.l2.to_bits());
    assert_eq!(a.krylov_iters, b.krylov_iters);
}

#[test]
fn overlapped_ns_values_match_blocking_bitwise() {
    let run = |variant: Option<SolverVariant>| {
        execute(&RunRequest {
            fidelity: Fidelity::Numerical,
            solver_variant: variant,
            ..RunRequest::new(catalog::ec2(), App::paper_ns(2), 8, 3)
        })
        .unwrap()
    };
    let a = run(None);
    let b = run(Some(SolverVariant::Overlapped));
    let (va, vb) = (a.verification.unwrap(), b.verification.unwrap());
    assert_eq!(va.linf.to_bits(), vb.linf.to_bits());
    assert_eq!(va.l2.to_bits(), vb.l2.to_bits());
    assert_eq!(a.krylov_iters, b.krylov_iters);
}

#[test]
fn overlapped_report_is_bitwise_identical_across_thread_counts() {
    // The overlapped path reuses the same fixed-chunk kernels, so the
    // whole serialized report is still a function of the data alone.
    let run = |threads: usize| -> String {
        let out = execute(&rd_numerical(Some(SolverVariant::Overlapped), threads)).unwrap();
        format!("{out:?}")
    };
    assert_eq!(run(1), run(4));
}

#[test]
fn pipelined_rd_tracks_blocking_accuracy_and_iterations() {
    let a = execute(&rd_numerical(None, 1)).unwrap();
    let p = execute(&rd_numerical(Some(SolverVariant::Pipelined), 1)).unwrap();
    let (va, vp) = (a.verification.unwrap(), p.verification.unwrap());
    // Pipelined CG reassociates the recurrences: same accuracy class, not
    // bitwise.
    assert!(vp.linf < 5e-6, "linf = {}", vp.linf);
    assert!(vp.l2 <= va.l2 * 10.0 + 1e-12, "{} vs {}", vp.l2, va.l2);
    assert!(
        (a.krylov_iters - p.krylov_iters).abs() <= 2.0,
        "pipelined {} vs classic {} mean iterations",
        p.krylov_iters,
        a.krylov_iters
    );
}

#[test]
fn modeled_solve_time_improves_at_scale_on_ethernet() {
    // The acceptance bar: at 216+ ranks on gigabit-Ethernet platforms the
    // overlapped and pipelined schedules must beat blocking in modeled
    // solve-phase time — latency is the dominant term there (paper
    // Section V), and both variants remove serialized latency from the
    // critical path.
    for (platform, ranks) in [
        (catalog::ec2(), 216),
        (catalog::ellipse(), 216),
        (catalog::ec2(), 1000),
    ] {
        let solve = |variant: Option<SolverVariant>| -> f64 {
            execute(&RunRequest {
                solver_variant: variant,
                discard: 1,
                ..RunRequest::new(platform.clone(), App::paper_rd(4), ranks, 20)
            })
            .unwrap()
            .phases
            .solve
        };
        let blocking = solve(None);
        let overlapped = solve(Some(SolverVariant::Overlapped));
        let pipelined = solve(Some(SolverVariant::Pipelined));
        assert!(
            overlapped < blocking,
            "{} x{ranks}: overlapped {overlapped} vs blocking {blocking}",
            platform.key
        );
        assert!(
            pipelined < blocking,
            "{} x{ranks}: pipelined {pipelined} vs blocking {blocking}",
            platform.key
        );
    }
}

#[test]
fn modeled_ns_solve_time_improves_at_scale_on_ethernet() {
    let solve = |variant: Option<SolverVariant>| -> f64 {
        execute(&RunRequest {
            solver_variant: variant,
            ..RunRequest::new(catalog::ec2(), App::paper_ns(2), 216, 20)
        })
        .unwrap()
        .phases
        .solve
    };
    let blocking = solve(None);
    let overlapped = solve(Some(SolverVariant::Overlapped));
    assert!(
        overlapped < blocking,
        "NS x216: overlapped {overlapped} vs blocking {blocking}"
    );
}
