//! Stress and soak coverage for the M:N cooperative engine — `#[ignore]`d
//! by default (a dedicated CI job runs them with `-- --ignored`) so the
//! ordinary test wall stays fast.
//!
//! The interesting claims at this scale are *resource* claims: 32768
//! coroutine ranks must actually complete (the old thread engine refused
//! above 4096), inside a wall-clock budget, without resident memory
//! exploding — coroutine stacks are lazily committed, so tens of
//! thousands of mostly-idle ranks cost address space, not RAM.

use hetero_simmpi::{
    run_spmd_opts, ClusterTopology, ComputeModel, EngineKind, EngineOpts, FaultPlan, NetworkModel,
    Payload, SpmdConfig,
};
use std::time::{Duration, Instant};

/// An InfiniBand-flavoured config (the ellipse grid's fabric) at `size`
/// ranks packed 16 per node.
fn big_cfg(size: usize) -> SpmdConfig {
    SpmdConfig {
        size,
        topo: ClusterTopology::uniform(size.div_ceil(16), 16),
        net: NetworkModel::infiniband_ddr(),
        compute: ComputeModel::new(1e9, 2e9),
        seed: 11,
    }
}

/// Peak resident set size of this process in bytes (Linux `VmHWM`).
#[cfg(target_os = "linux")]
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

/// A nearest-neighbour exchange: enough real traffic that every rank
/// blocks and resumes several times, with a final value that proves the
/// messages actually flowed in order.
fn neighbour_body(comm: &mut hetero_simmpi::SimComm) -> usize {
    let next = (comm.rank() + 1) % comm.size();
    let prev = (comm.rank() + comm.size() - 1) % comm.size();
    let mut token = comm.rank();
    for step in 0..3u64 {
        comm.send(next, step, Payload::Usize(vec![token]));
        token = comm.recv_usize(prev, step)[0];
    }
    token
}

#[test]
#[ignore = "soak: 32768 ranks; run with -- --ignored"]
fn soak_32768_rank_cooperative_smoke_within_budget() {
    let size = 32768;
    let start = Instant::now();
    let (res, _) = run_spmd_opts(
        big_cfg(size),
        EngineOpts::default(),
        FaultPlan::none(),
        None,
        neighbour_body,
    );
    let res = res.expect("no faults planned");
    let elapsed = start.elapsed();
    assert_eq!(res.len(), size);
    // Three shifts around the ring: rank r ends holding rank (r - 3)'s
    // token.
    for (r, out) in res.iter().enumerate() {
        assert_eq!(out.value, (r + size - 3) % size);
        assert!(out.clock > 0.0);
    }
    // Generous budget: the run takes seconds in release, and the CI job
    // runs release. The assert exists to catch quadratic blowups, not to
    // benchmark.
    assert!(
        elapsed < Duration::from_secs(600),
        "32768-rank smoke took {elapsed:?}"
    );
}

#[test]
#[ignore = "soak: peak-RSS comparison; run with -- --ignored"]
#[cfg(target_os = "linux")]
fn rss_at_32768_cooperative_ranks_stays_sane() {
    // Run the *thread* engine at 1000 ranks first to establish that the
    // measurement machinery works, then the cooperative engine at 32x that
    // scale. VmHWM is a process-lifetime high-water mark, so the final
    // reading bounds the cooperative run too: 32768 ranks must fit in a
    // budget a thread-per-rank design could not meet (32768 OS threads
    // at the default 8 MiB stack reservation would ask for 256 GiB of
    // address space and tens of GiB resident just for stacks and kernel
    // bookkeeping).
    let (res, _) = run_spmd_opts(
        big_cfg(1000),
        EngineOpts {
            engine: EngineKind::Threads,
            ..EngineOpts::default()
        },
        FaultPlan::none(),
        None,
        neighbour_body,
    );
    assert_eq!(res.expect("no faults planned").len(), 1000);
    let after_threads = peak_rss_bytes().expect("/proc/self/status readable");

    let (res, _) = run_spmd_opts(
        big_cfg(32768),
        EngineOpts::default(),
        FaultPlan::none(),
        None,
        neighbour_body,
    );
    assert_eq!(res.expect("no faults planned").len(), 32768);
    let after_coop = peak_rss_bytes().expect("/proc/self/status readable");

    // 32768 x 1 MiB stacks are 32 GiB of *virtual* space; resident growth
    // must stay far below that because idle stack pages are never touched.
    let budget = 24u64 << 30;
    assert!(
        after_coop < budget,
        "peak RSS {after_coop} exceeds {budget} after the 32768-rank run \
         (thread engine at 1000 ranks peaked at {after_threads})"
    );
}
