//! Guarantees of the structured-event trace layer: byte-identical exports
//! across intra-rank thread counts, seed sensitivity, conservation of
//! traced time against the reported wall time, campaign-level fault
//! events, and a truly zero-cost disabled path.

use hetero_fault::{FaultModel, SpotMarket};
use hetero_hpc::apps::App;
use hetero_hpc::recovery::{execute_resilient, ResilienceSpec};
use hetero_hpc::run::{execute, Fidelity, RunRequest};
use hetero_hpc::TraceSpec;
use hetero_platform::catalog;
use hetero_trace::{EventKind, Phase, CAMPAIGN_RANK};

fn traced_rd(seed: u64, threads_per_rank: usize) -> RunRequest {
    RunRequest {
        fidelity: Fidelity::Numerical,
        threads_per_rank,
        seed,
        discard: 1,
        trace: Some(TraceSpec::messages()),
        ..RunRequest::new(catalog::ec2(), App::paper_rd(3), 8, 3)
    }
}

/// An RD run on an EC2 spot fleet under a market compressed enough to
/// revoke nodes inside the tiny virtual duration of an 8-rank test run.
fn faulty_rd(seed: u64, threads_per_rank: usize) -> RunRequest {
    let ec2 = catalog::ec2();
    let mut spec = ResilienceSpec::spot_with_restart(&ec2, 1.0, 1, 50);
    spec.faults = FaultModel {
        crashes: None,
        spot: Some(SpotMarket {
            epoch_seconds: 0.012,
            spike_probability: 0.35,
            ..SpotMarket::ec2_like(1.0)
        }),
        degradation: None,
    };
    RunRequest {
        fidelity: Fidelity::Numerical,
        threads_per_rank,
        seed,
        resilience: Some(spec),
        trace: Some(TraceSpec::collectives()),
        ..RunRequest::new(ec2, App::paper_rd(6), 8, 3)
    }
}

#[test]
fn jsonl_trace_is_byte_identical_across_thread_counts() {
    // Events are stamped with virtual time and ordered by (at, rank, seq);
    // host scheduling and the intra-rank pool size never leak in, so the
    // serialized trace is a pure function of (program, platform, seed).
    let export = |threads: usize| {
        let out = execute(&traced_rd(2012, threads)).unwrap();
        let t = out.trace.expect("tracing was requested");
        (t.jsonl(), t.chrome_json())
    };
    let (jsonl_1t, chrome_1t) = export(1);
    let (jsonl_4t, chrome_4t) = export(4);
    assert_eq!(jsonl_1t, jsonl_4t);
    assert_eq!(chrome_1t, chrome_4t);
}

#[test]
fn jsonl_trace_is_distinct_per_seed_and_reproducible() {
    // 27 ranks span two EC2 nodes, so inter-node messages exist for the
    // seed-keyed virtualization jitter to perturb. (At 8 ranks everything
    // is intra-node and the trace is legitimately seed-invariant.)
    let export = |seed: u64| {
        let req = RunRequest {
            seed,
            ranks: 27,
            ..traced_rd(seed, 1)
        };
        execute(&req)
            .unwrap()
            .trace
            .expect("tracing was requested")
            .jsonl()
    };
    assert_eq!(export(7), export(7));
    assert_ne!(export(7), export(8), "EC2 jitter must differ per seed");
}

#[test]
fn traced_phase_durations_conserve_the_iteration_wall_time() {
    // For every (rank, step): assembly + precond + solve + other spans sum
    // to the enclosing iteration span within 1e-12 relative — no traced
    // time is lost and none is invented.
    let out = execute(&traced_rd(2012, 1)).unwrap();
    let trace = out.trace.as_ref().unwrap();
    let mut named = std::collections::BTreeMap::new();
    let mut iteration = std::collections::BTreeMap::new();
    for e in &trace.events {
        if let EventKind::Phase { phase, step } = e.kind {
            if phase == Phase::Iteration {
                *iteration.entry((e.rank, step)).or_insert(0.0) += e.dur;
            } else {
                *named.entry((e.rank, step)).or_insert(0.0) += e.dur;
            }
        }
    }
    assert!(!iteration.is_empty());
    assert_eq!(named.len(), iteration.len());
    for (key, total) in &iteration {
        let parts = named[key];
        assert!(
            (parts - total).abs() <= 1e-12 * total.abs(),
            "rank/step {key:?}: phases sum to {parts}, iteration is {total}"
        );
    }
    // And the recomputed rollup reproduces the reported per-iteration
    // numbers bitwise (same reduction, operation for operation).
    let r = trace.phase_rollup(1).unwrap();
    assert_eq!(r.assembly, out.phases.assembly);
    assert_eq!(r.precond, out.phases.precond);
    assert_eq!(r.solve, out.phases.solve);
    assert_eq!(r.total, out.phases.total);
}

#[test]
fn chrome_export_is_valid_json_whose_phase_spans_match_the_report() {
    let out = execute(&traced_rd(2012, 1)).unwrap();
    let trace = out.trace.as_ref().unwrap();
    let v: serde_json::Value = serde_json::from_str(&trace.chrome_json()).unwrap();
    let events = v["traceEvents"].as_array().expect("traceEvents array");
    assert_eq!(events.len(), trace.events.len());

    // Sum the "X" phase spans per (rank, step) straight from the exported
    // JSON and reduce them the report's way: critical rank, then average
    // over the kept steps. ts/dur are microseconds of virtual time.
    let mut per_cell = std::collections::BTreeMap::new();
    for e in events {
        if e["cat"].as_str() == Some("phase") && e["ph"].as_str() == Some("X") {
            let name = e["name"].as_str().unwrap().to_string();
            let rank = e["tid"].as_u64().unwrap();
            let step = e["args"]["step"].as_u64().unwrap();
            *per_cell.entry((name, step, rank)).or_insert(0.0) += e["dur"].as_f64().unwrap() / 1e6;
        }
    }
    let reduce = |name: &str| {
        let mut per_step = std::collections::BTreeMap::new();
        for ((n, step, _rank), dur) in &per_cell {
            if n == name {
                let slot: &mut f64 = per_step.entry(*step).or_insert(0.0);
                *slot = slot.max(*dur);
            }
        }
        let kept: Vec<f64> = per_step.into_values().skip(1).collect();
        kept.iter().sum::<f64>() / kept.len() as f64
    };
    for (name, reported) in [
        ("assembly", out.phases.assembly),
        ("precond", out.phases.precond),
        ("solve", out.phases.solve),
        ("iteration", out.phases.total),
    ] {
        let from_chrome = reduce(name);
        assert!(
            (from_chrome - reported).abs() <= 1e-9 * reported.abs(),
            "{name}: chrome spans give {from_chrome}, report says {reported}"
        );
    }
}

#[test]
fn disabled_sink_records_nothing_and_perturbs_nothing() {
    let on = traced_rd(2012, 1);
    let off = RunRequest {
        trace: None,
        ..on.clone()
    };
    let traced = execute(&on).unwrap();
    let plain = execute(&off).unwrap();
    assert!(plain.trace.is_none());
    // The untraced run takes the sink-free engine path; identical numbers
    // prove recording is observation only.
    assert_eq!(plain.phases, traced.phases);
    assert_eq!(plain.cost_per_iteration, traced.cost_per_iteration);
    assert_eq!(
        plain.verification.unwrap().l2,
        traced.verification.unwrap().l2
    );
}

#[test]
fn campaign_trace_records_the_recovery_story() {
    let out = execute_resilient(&faulty_rd(2012, 1)).unwrap();
    assert!(
        out.stats.faults_injected >= 1,
        "the market was supposed to bite"
    );
    let campaign = out.trace.as_ref().expect("tracing was requested");

    let count =
        |f: &dyn Fn(&EventKind) -> bool| campaign.events.iter().filter(|e| f(&e.kind)).count();
    let attempts = count(&|k| matches!(k, EventKind::AttemptStart { .. }));
    let revocations = count(&|k| matches!(k, EventKind::Revocation { .. }));
    let rollbacks = count(&|k| matches!(k, EventKind::Rollback { .. }));
    let expenses = count(&|k| matches!(k, EventKind::Expense { .. }));
    let accounts = count(&|k| matches!(k, EventKind::TimeAccount { .. }));
    assert_eq!(attempts, out.stats.attempts);
    assert_eq!(revocations, out.stats.faults_injected);
    assert_eq!(rollbacks, out.stats.faults_injected);
    assert_eq!(
        expenses, out.stats.attempts,
        "every attempt bills the fleet"
    );
    assert_eq!(accounts, 5, "wait/backoff/checkpoint/lost_work/compute");

    // Campaign-level events live on the synthetic campaign track; the
    // merged per-rank spans of the completed attempt live on real ranks.
    assert!(campaign.events.iter().any(|e| e.rank == CAMPAIGN_RANK));
    assert!(campaign
        .events
        .iter()
        .any(|e| e.rank != CAMPAIGN_RANK && matches!(e.kind, EventKind::Phase { .. })));

    // The completed attempt's own trace is also surfaced unshifted.
    let final_run = out.outcome.as_ref().expect("campaign completed");
    assert!(final_run.trace.as_ref().is_some_and(|t| !t.is_empty()));
}

#[test]
fn resilient_trace_is_byte_identical_across_thread_counts() {
    // Fault unwinds happen at virtual-time-determined points (a rank dies
    // at its node-loss clock, or when an awaited message provably cannot
    // arrive), and felled attempts contribute only campaign-level events —
    // the exported trace stays a function of the seed alone.
    let export = |threads: usize| {
        let out = execute_resilient(&faulty_rd(2012, threads)).unwrap();
        out.trace.expect("tracing was requested").jsonl()
    };
    assert_eq!(export(1), export(4));
}

#[test]
fn modeled_resilient_campaign_synthesizes_checkpoints() {
    // At paper scale the modeled path replays the campaign analytically;
    // its trace must still carry the checkpoint commits and time accounts.
    let ec2 = catalog::ec2();
    let spec = ResilienceSpec::spot_with_restart(&ec2, 1.0, 4, 40);
    let req = RunRequest {
        fidelity: Fidelity::Modeled,
        resilience: Some(spec),
        trace: Some(TraceSpec::phases()),
        ..RunRequest::new(ec2, App::paper_rd(8), 216, 20)
    };
    let out = execute_resilient(&req).unwrap();
    let campaign = out.trace.as_ref().expect("tracing was requested");
    assert!(campaign
        .events
        .iter()
        .any(|e| matches!(e.kind, EventKind::Checkpoint { .. })));
    assert!(campaign
        .events
        .iter()
        .any(|e| matches!(e.kind, EventKind::TimeAccount { .. })));
    // The fault-free forward run's synthesized spans roll up to the
    // reported phases bitwise, exactly like the plain modeled path.
    let outcome = out.outcome.as_ref().expect("campaign completed");
    let r = outcome
        .trace
        .as_ref()
        .unwrap()
        .phase_rollup(req.discard)
        .unwrap();
    assert_eq!(r.total, outcome.phases.total);
}
