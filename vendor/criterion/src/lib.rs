//! In-tree stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this crate implements
//! the benchmarking surface the workspace's `[[bench]]` targets use:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`],
//! [`Bencher::iter`], and the `criterion_group!` / `criterion_main!`
//! macros. It is a plain wall-clock harness: each sample times a batch of
//! iterations and the reported figure is the median ns/op across samples.
//! There is no statistical regression analysis, warm-up tuning, or HTML
//! report — just stable, comparable numbers printed to stdout.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Measures one closure: estimates an iteration batch size, then times
/// `sample_size` batches.
pub struct Bencher {
    samples: usize,
    /// Median ns per operation, filled in by [`Bencher::iter`].
    median_ns: f64,
}

impl Bencher {
    /// Times `routine`, recording the median ns/op over the configured
    /// number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Estimate how many iterations fit in ~2 ms so short kernels are
        // timed in batches rather than per call.
        let mut iters_per_sample = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed.as_micros() >= 2_000 || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
        }

        let mut per_op: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..iters_per_sample {
                    black_box(routine());
                }
                t0.elapsed().as_nanos() as f64 / iters_per_sample as f64
            })
            .collect();
        per_op.sort_by(f64::total_cmp);
        self.median_ns = per_op[per_op.len() / 2];
    }
}

/// Identifies one benchmark within a group, usually by its parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id naming both a function and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// An id naming just a parameter (the group supplies the function
    /// name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Units processed per iteration, used to print a rate next to the time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{id}", self.name);
        run_one(&label, self.samples, self.throughput, |b| f(b));
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.samples, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(2);
        self
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.samples, None, |b| f(b));
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup {
            name: name.into(),
            samples,
            throughput: None,
            _criterion: self,
        }
    }

    /// Prints the closing summary line (called by `criterion_main!`).
    pub fn final_summary(&mut self) {
        println!("benchmarks complete");
    }
}

fn run_one(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples,
        median_ns: f64::NAN,
    };
    f(&mut bencher);
    let ns = bencher.median_ns;
    match throughput {
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            let rate = n as f64 / (ns * 1e-9);
            println!("{label:<50} {ns:>14.1} ns/iter  {rate:>12.3e} elem/s");
        }
        Some(Throughput::Bytes(n)) if ns > 0.0 => {
            let rate = n as f64 / (ns * 1e-9);
            println!("{label:<50} {ns:>14.1} ns/iter  {rate:>12.3e} B/s");
        }
        _ => println!("{label:<50} {ns:>14.1} ns/iter"),
    }
}

/// Declares a group of benchmark functions, mirroring criterion's two
/// accepted forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates the benchmark binary's `main`, running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut g = c.benchmark_group("sum");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::from_parameter(100), &100usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>());
        });
        g.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        g.finish();
    }

    criterion_group!(name = group_a; config = Criterion::default().sample_size(3); targets = target);
    criterion_group!(group_b, target);

    #[test]
    fn groups_run_and_report() {
        group_a();
        group_b();
    }
}
