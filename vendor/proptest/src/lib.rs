//! In-tree stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this crate implements
//! the subset of proptest the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_filter`, range and
//! tuple strategies, [`strategy::Just`], [`strategy::Union`] (backing
//! `prop_oneof!`), [`collection::vec`], `any::<T>()`, and the `proptest!` /
//! `prop_assert*` macro family.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! the assertion message only), and case generation is seeded
//! deterministically from the test function's name so failures reproduce
//! exactly across runs.

/// Runner configuration, RNG, and test-case error type.
pub mod test_runner {
    /// How many accepted cases each property runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases that must pass.
        pub cases: u32,
    }

    impl Config {
        /// A config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the whole property fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is re-drawn.
        Reject(String),
    }

    /// Deterministic splitmix64 generator used for all value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed (typically hashed from the test
        /// name).
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Seeds a generator from an arbitrary string, FNV-1a style.
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf29ce484222325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng::new(h)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in `[0, n)`; `n` must be positive.
        pub fn usize_below(&mut self, n: usize) -> usize {
            assert!(n > 0, "usize_below(0)");
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Discards generated values failing `pred`, re-drawing (bounded)
        /// until one passes.
        fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                pred,
            }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter gave up after 10000 rejects: {}", self.reason);
        }
    }

    /// Uniformly picks one of several strategies per draw (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "Union of zero strategies");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.usize_below(self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (lo + off) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
    );
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.usize_below(self.size.hi - self.size.lo + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `any::<T>()` over the full domain of simple types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// Strategy over `T`'s whole domain.
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            // Sign-symmetric, wide dynamic range, always finite.
            let exp = rng.usize_below(201) as i32 - 100;
            (rng.unit_f64() * 2.0 - 1.0) * 2f64.powi(exp)
        }
    }
}

/// The glob-import surface the tests use.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror so `prop::collection::vec(...)` works.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that draws inputs and runs the body per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let __max_attempts = u64::from(__config.cases) * 100;
            let mut __accepted: u32 = 0;
            let mut __attempts: u64 = 0;
            while __accepted < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __max_attempts,
                    "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                    stringify!($name),
                    __accepted,
                    __config.cases,
                );
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+
                );
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match __outcome {
                    ::core::result::Result::Ok(()) => __accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!("proptest {} failed: {}", stringify!($name), __msg)
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a proptest body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = &$a;
        let __b = &$b;
        if !(*__a == *__b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                    __a,
                    __b
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = &$a;
        let __b = &$b;
        if !(*__a == *__b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = &$a;
        let __b = &$b;
        if *__a == *__b {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `left != right`\n  left: {:?}\n right: {:?}",
                    __a,
                    __b
                ),
            ));
        }
    }};
}

/// Rejects the current case (re-drawn, not counted) when the assumption
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Uniformly chooses among several strategies each draw.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(n in 3usize..10, x in -1.5f64..1.5) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((-1.5..1.5).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn vec_and_tuple_strategies_compose(
            v in prop::collection::vec((0usize..5, -1.0f64..1.0), 1..8),
            tag in prop_oneof![Just("a"), Just("b")],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for (i, x) in &v {
                prop_assert!(*i < 5);
                prop_assert!((-1.0..1.0).contains(x), "x = {x}");
            }
            prop_assert!(tag == "a" || tag == "b");
        }

        #[test]
        fn assume_rejects_without_failing(a in 0usize..10) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
            prop_assert_ne!(a, 999);
        }

        #[test]
        fn map_and_filter(v in (1usize..50).prop_map(|x| x * 2).prop_filter("nonzero", |x| *x > 0)) {
            prop_assert!(v % 2 == 0 && v >= 2);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        let s = 0usize..1000;
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
