//! In-tree stand-in for `rayon`, built for *deterministic* intra-rank
//! parallelism.
//!
//! The build environment has no network access, so the workspace vendors
//! this minimal implementation instead of the real crate. It intentionally
//! does **not** provide work-stealing `par_iter` adapters; it provides the
//! pool-configuration surface the workspace uses (`ThreadPoolBuilder`,
//! `ThreadPool::install`, `current_num_threads`) plus the [`fixed`] module
//! of order-preserving fork-join primitives that the numerical kernels are
//! written against.
//!
//! # Determinism contract
//!
//! Work is split into **fixed-size chunks whose boundaries depend only on
//! the input size**, never on the thread count. Each chunk's result is
//! computed independently and combined (or written back) in chunk-index
//! order. Consequently every primitive in [`fixed`] produces bitwise
//! identical results at any pool size, including 1 — which is also why a
//! sequential fallback below a size threshold is always safe.
//!
//! # Pool model
//!
//! There is no persistent worker pool: parallel regions spawn scoped
//! threads (`std::thread::scope`), which keeps all data borrowing safe and
//! makes the implementation `unsafe`-free. The effective thread count is a
//! thread-local setting: `ThreadPool::install` binds it for the duration of
//! a closure on the *calling* thread (each simulated SPMD rank thread
//! installs its own), defaulting to `RAYON_NUM_THREADS` or 1.

use std::cell::Cell;

thread_local! {
    /// 0 means "not installed": fall back to the environment default.
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn env_default_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// The number of threads parallel regions on this thread will use.
pub fn current_num_threads() -> usize {
    let installed = CURRENT_THREADS.with(Cell::get);
    if installed == 0 {
        env_default_threads()
    } else {
        installed
    }
}

/// Error building a thread pool (kept for API compatibility; the stand-in
/// cannot actually fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default thread count
    /// (`RAYON_NUM_THREADS` or 1).
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// Sets the pool's thread count (0 = environment default).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    /// Never fails in the stand-in; the `Result` mirrors the real API.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            env_default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A logical thread pool: a thread-count setting that [`ThreadPool::install`]
/// binds on the calling thread. Threads themselves are scoped per parallel
/// region.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count installed on the calling
    /// thread, restoring the previous setting afterwards (also on panic).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_THREADS.with(|c| c.set(self.0));
            }
        }
        let prev = CURRENT_THREADS.with(Cell::get);
        CURRENT_THREADS.with(|c| c.set(self.num_threads.max(1)));
        let _restore = Restore(prev);
        op()
    }

    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Deterministic, order-preserving fork-join primitives.
pub mod fixed {
    /// Runs `n` independent tasks, returning their results in task order.
    /// Tasks are distributed to threads in contiguous index blocks, so the
    /// assignment (and the output order) is independent of scheduling.
    pub fn map_tasks<R, F>(n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let threads = super::current_num_threads().min(n);
        if threads <= 1 {
            return (0..n).map(f).collect();
        }
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let per = n.div_ceil(threads);
        std::thread::scope(|s| {
            for (block_idx, block) in out.chunks_mut(per).enumerate() {
                let f = &f;
                s.spawn(move || {
                    for (j, slot) in block.iter_mut().enumerate() {
                        *slot = Some(f(block_idx * per + j));
                    }
                });
            }
        });
        out.into_iter()
            .map(|r| r.expect("every task ran"))
            .collect()
    }

    /// Splits `data` into fixed-size chunks of `chunk_len` elements (the
    /// last may be short) and calls `f(chunk_index, start_offset, chunk)`
    /// for each, in parallel across contiguous chunk blocks. Chunk
    /// boundaries depend only on `data.len()` and `chunk_len`.
    pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, usize, &mut [T]) + Sync,
    {
        assert!(chunk_len > 0, "chunk_len must be positive");
        if data.is_empty() {
            return;
        }
        let nchunks = data.len().div_ceil(chunk_len);
        let threads = super::current_num_threads().min(nchunks);
        if threads <= 1 {
            for (i, c) in data.chunks_mut(chunk_len).enumerate() {
                f(i, i * chunk_len, c);
            }
            return;
        }
        let per = nchunks.div_ceil(threads);
        std::thread::scope(|s| {
            let mut rest = data;
            let mut first_chunk = 0usize;
            while !rest.is_empty() {
                let take = (per * chunk_len).min(rest.len());
                let (head, tail) = std::mem::take(&mut rest).split_at_mut(take);
                rest = tail;
                let f = &f;
                let base = first_chunk;
                s.spawn(move || {
                    for (j, c) in head.chunks_mut(chunk_len).enumerate() {
                        f(base + j, (base + j) * chunk_len, c);
                    }
                });
                first_chunk += per;
            }
        });
    }

    /// Fixed-chunk sum reduction: partial sums over `chunk_len`-sized
    /// chunks of an index space, combined left-to-right in chunk order.
    /// `chunk_sum(start, end)` must return the sum over `[start, end)`.
    /// Bitwise identical at any thread count.
    pub fn chunked_sum<F>(n: usize, chunk_len: usize, chunk_sum: F) -> f64
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        if n == 0 {
            return 0.0;
        }
        let nchunks = n.div_ceil(chunk_len);
        let partials = map_tasks(nchunks, |i| {
            let start = i * chunk_len;
            chunk_sum(start, (start + chunk_len).min(n))
        });
        partials.into_iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn map_tasks_preserves_order_at_any_pool_size() {
        let expected: Vec<usize> = (0..1000).map(|i| i * i).collect();
        for threads in [1, 2, 4, 7] {
            let got = pool(threads).install(|| fixed::map_tasks(1000, |i| i * i));
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn chunked_sum_is_bitwise_identical_across_pool_sizes() {
        let xs: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let sum_at = |threads: usize| {
            pool(threads)
                .install(|| fixed::chunked_sum(xs.len(), 128, |s, e| xs[s..e].iter().sum()))
        };
        let s1 = sum_at(1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(s1.to_bits(), sum_at(threads).to_bits());
        }
    }

    #[test]
    fn for_each_chunk_mut_covers_every_element_once() {
        let mut data = vec![0u32; 999];
        pool(4).install(|| {
            fixed::for_each_chunk_mut(&mut data, 64, |_ci, start, chunk| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x += (start + j) as u32 + 1;
                }
            });
        });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, i as u32 + 1);
        }
    }

    #[test]
    fn install_restores_previous_setting() {
        let outer = pool(3);
        let inner = pool(5);
        outer.install(|| {
            assert_eq!(current_num_threads(), 3);
            inner.install(|| assert_eq!(current_num_threads(), 5));
            assert_eq!(current_num_threads(), 3);
        });
    }
}
