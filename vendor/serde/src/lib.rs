//! In-tree stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the workspace cannot
//! pull the real serde from crates.io. This crate implements the small
//! slice of serde the workspace actually uses, organized around a single
//! JSON-shaped [`Value`] data model:
//!
//! - [`Serialize`] converts a value into a [`Value`] tree;
//! - [`Deserialize`] reconstructs a value from a [`Value`] tree;
//! - with the `derive` feature, `#[derive(Serialize, Deserialize)]` from
//!   the vendored `serde_derive` generates those impls for named-field
//!   structs and unit/tuple/struct enum variants.
//!
//! The companion `serde_json` stand-in supplies the text format (parser,
//! pretty printer, `json!`). Numbers are stored as either `Int` (i128) or
//! `Float` (f64); integral floats may print without a decimal point and
//! re-parse as `Int`, which `f64::deserialize_value` accepts — round trips
//! are lossless for every finite value.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped tree. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (also produced by parsing a float that prints without a
    /// fractional part).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Object member lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Like [`Value::get`] but yields `Null` for missing keys — the lookup
    /// the derived `Deserialize` impls use, so `Option` fields absent from
    /// the input read back as `None`.
    pub fn field(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }

    /// Array element lookup for derived tuple-variant impls; `Null` when
    /// out of bounds or not an array.
    pub fn element(&self, index: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The entries if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The string slice if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `f64` (both `Int` and `Float` qualify).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The numeric value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The numeric value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The boolean if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.field(key)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        self.element(index)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

/// Serialization/deserialization error (also used by the `serde_json`
/// stand-in as its parse-error type).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`] tree.
    fn serialize_value(&self) -> Value;
}

/// Reconstruction from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes `Self` from a [`Value`] tree.
    ///
    /// # Errors
    /// Returns an [`Error`] if the tree does not match `Self`'s shape.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::new(format!("expected bool, got {v:?}")))
    }
}

macro_rules! impl_integer {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        Error::new(format!(
                            "integer {i} out of range for {}",
                            stringify!($t)
                        ))
                    }),
                    _ => Err(Error::new(format!(
                        "expected {}, got {v:?}",
                        stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

impl_integer!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::new(format!("expected f64, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::deserialize_value(v)? as f32)
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::new(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            _ => Ok(Some(T::deserialize_value(v)?)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            _ => Err(Error::new(format!("expected array, got {v:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize_value(v)?;
        if items.len() != N {
            return Err(Error::new(format!(
                "expected {N}-element array, got {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        out.copy_from_slice(&items);
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                Ok(($($t::deserialize_value(v.element($idx))?,)+))
            }
        }
    )*};
}

impl_tuple!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_lookups() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(3)),
            (
                "b".into(),
                Value::Array(vec![Value::Float(1.5), Value::Null]),
            ),
        ]);
        assert_eq!(v["a"].as_u64(), Some(3));
        assert_eq!(v["b"][0].as_f64(), Some(1.5));
        assert!(v["b"][1].is_null());
        assert!(v["missing"].is_null());
    }

    #[test]
    fn option_roundtrip_through_null() {
        let none: Option<String> = None;
        let some = Some("x".to_string());
        assert_eq!(
            Option::<String>::deserialize_value(&none.serialize_value()).unwrap(),
            None
        );
        assert_eq!(
            Option::<String>::deserialize_value(&some.serialize_value()).unwrap(),
            Some("x".to_string())
        );
    }

    #[test]
    fn integers_roundtrip_and_range_check() {
        assert_eq!(
            u64::deserialize_value(&u64::MAX.serialize_value()).unwrap(),
            u64::MAX
        );
        assert!(u8::deserialize_value(&Value::Int(300)).is_err());
    }

    #[test]
    fn tuple_roundtrip() {
        let t = (1u64, 2u64, 3u64, 4u64);
        let v = t.serialize_value();
        assert_eq!(<(u64, u64, u64, u64)>::deserialize_value(&v).unwrap(), t);
    }

    #[test]
    fn string_equality_against_value() {
        let v = Value::String("RD".into());
        assert_eq!(v, "RD");
    }
}
