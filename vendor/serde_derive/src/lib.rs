//! In-tree stand-in for `serde_derive`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal serde implementation (see `vendor/serde`).
//! This crate provides the `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! macros for it, written directly against `proc_macro` token streams —
//! no `syn`/`quote` dependency.
//!
//! Supported shapes (exactly what the workspace uses):
//! - structs with named fields,
//! - enums with unit variants, tuple variants, and struct variants.
//!
//! The generated impls target the vendored `serde` data model: everything
//! serializes through `serde::Value`, and field/variant types are resolved
//! by ordinary type inference in the generated constructors, so the parser
//! never needs to understand Rust types — only names and arities.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

enum Body {
    Struct(Vec<String>),
    Enum(Vec<(String, Variant)>),
}

enum Variant {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    body: Body,
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    // Skip attributes (doc comments arrive as #[doc = "..."]) and the
    // visibility qualifier, then land on `struct` / `enum`.
    let kind = loop {
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Punct(bang)) = toks.peek() {
                    if bang.as_char() == '!' {
                        toks.next();
                    }
                }
                toks.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next(); // pub(crate) etc.
                        }
                    }
                } else if s == "struct" || s == "enum" {
                    break s;
                } else {
                    panic!("serde derive: unsupported item prefix `{s}`");
                }
            }
            other => panic!("serde derive: unexpected token {other:?}"),
        }
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected item name, got {other:?}"),
    };
    let body_group = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!(
            "serde derive on `{name}`: only brace-bodied, non-generic items are supported \
             (got {other:?})"
        ),
    };
    let body = if kind == "struct" {
        Body::Struct(parse_named_fields(body_group.stream()))
    } else {
        Body::Enum(parse_variants(body_group.stream()))
    };
    Item { name, body }
}

/// Parses `[attrs] [vis] name: Type, ...`, returning the field names. Type
/// tokens are skipped up to each top-level comma; `<`/`>` depth is tracked
/// so commas inside generic arguments (e.g. `HashMap<K, V>`) don't split.
/// Parenthesized tuple types are single `Group` tokens, so their commas are
/// invisible here.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        skip_attributes(&mut toks);
        skip_visibility(&mut toks);
        match toks.next() {
            None => break,
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            Some(other) => panic!("serde derive: expected a field name, got {other:?}"),
        }
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field name, got {other:?}"),
        }
        let mut angle_depth = 0i32;
        loop {
            match toks.next() {
                None => break,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Variant)> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        skip_attributes(&mut toks);
        let name = match toks.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde derive: expected a variant name, got {other:?}"),
        };
        let variant = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                Variant::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fs = parse_named_fields(g.stream());
                toks.next();
                Variant::Named(fs)
            }
            _ => Variant::Unit,
        };
        if let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == ',' {
                toks.next();
            }
        }
        variants.push((name, variant));
    }
    variants
}

fn skip_attributes(toks: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    while let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() != '#' {
            break;
        }
        toks.next(); // '#'
        toks.next(); // '[...]'
    }
}

fn skip_visibility(toks: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(id)) = toks.peek() {
        if id.to_string() == "pub" {
            toks.next();
            if let Some(TokenTree::Group(g)) = toks.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    toks.next();
                }
            }
        }
    }
}

/// Counts top-level fields inside a tuple-variant's parentheses (types and
/// attributes are opaque; only `<`/`>`-aware top-level commas matter).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut count = 0usize;
    let mut segment_has_tokens = false;
    for t in stream {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    segment_has_tokens = false;
                    continue;
                }
                _ => {}
            }
        }
        segment_has_tokens = true;
    }
    if segment_has_tokens {
        count + 1
    } else {
        count
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    match &item.body {
        Body::Struct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::serialize_value(&self.{f})));\n"
                ));
            }
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                             ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(__fields)\n\
                     }}\n\
                 }}\n"
            )
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (v, kind) in variants {
                match kind {
                    Variant::Unit => arms.push_str(&format!(
                        "{name}::{v} => \
                         ::serde::Value::String(::std::string::String::from(\"{v}\")),\n"
                    )),
                    Variant::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(__f0) => \
                         ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{v}\"), \
                         ::serde::Serialize::serialize_value(__f0))]),\n"
                    )),
                    Variant::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => \
                             ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Array(::std::vec![{elems}]))]),\n",
                            binds = binds.join(", "),
                            elems = elems.join(", "),
                        ));
                    }
                    Variant::Named(fs) => {
                        let entries: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::serialize_value({f}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => \
                             ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Object(::std::vec![{entries}]))]),\n",
                            binds = fs.join(", "),
                            entries = entries.join(", "),
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> ::serde::Value {{\n\
                         match self {{\n\
                             {arms}\
                         }}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    match &item.body {
        Body::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::deserialize_value(__v.field(\"{f}\"))?")
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}\n",
                inits = inits.join(", "),
            )
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (v, kind) in variants {
                match kind {
                    Variant::Unit => unit_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"
                    )),
                    Variant::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::deserialize_value(__inner)?)),\n"
                    )),
                    Variant::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::deserialize_value(__inner.element({i}))?"
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v}({elems})),\n",
                            elems = elems.join(", "),
                        ));
                    }
                    Variant::Named(fs) => {
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::deserialize_value(\
                                     __inner.field(\"{f}\"))?"
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v} {{ {inits} }}),\n",
                            inits = inits.join(", "),
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::String(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\
                                 __other => ::std::result::Result::Err(::serde::Error::new(\
                                     format!(\"unknown {name} variant `{{}}`\", __other))),\n\
                             }},\n\
                             ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                                 let __tag = __entries[0].0.as_str();\n\
                                 let __inner = &__entries[0].1;\n\
                                 match __tag {{\n\
                                     {tagged_arms}\
                                     __other => ::std::result::Result::Err(::serde::Error::new(\
                                         format!(\"unknown {name} variant `{{}}`\", __other))),\n\
                                 }}\n\
                             }}\n\
                             __other => ::std::result::Result::Err(::serde::Error::new(\
                                 format!(\"invalid encoding for enum {name}: {{:?}}\", __other))),\n\
                         }}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}
