//! In-tree stand-in for `serde_json`, layered over the vendored `serde`
//! crate's [`Value`] data model.
//!
//! Provides exactly what the workspace uses: [`to_string`] /
//! [`to_string_pretty`], [`from_str`], [`to_value`], the [`json!`] macro,
//! and the re-exported [`Value`] / [`Error`] types.
//!
//! Floats print through Rust's shortest-round-trip `{}` formatting, so
//! every finite `f64` survives a serialize/parse cycle bitwise (integral
//! floats print without a fractional part and re-parse as integers, which
//! `f64` deserialization accepts).

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Serializes a value to compact JSON.
///
/// # Errors
/// Infallible for the stand-in's data model; kept fallible for API
/// compatibility with the real crate.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty JSON (2-space indent).
///
/// # Errors
/// Infallible for the stand-in's data model; kept fallible for API
/// compatibility with the real crate.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
/// Infallible for the stand-in's data model; kept fallible for API
/// compatibility with the real crate.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize_value())
}

#[doc(hidden)]
pub fn __to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize_value()
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse(s)?;
    T::deserialize_value(&v)
}

/// Builds a [`Value`] from JSON-ish syntax: `json!({ "key": expr, ... })`,
/// `json!([expr, ...])`, `json!(null)`, or any serializable expression.
///
/// Unlike the real crate, object/array *values* must be Rust expressions,
/// so write nested literals as nested `json!` calls:
/// `json!({ "outer": json!({ "inner": 1 }) })`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $((::std::string::String::from($key), $crate::__to_value(&($value)))),*
        ])
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![$($crate::__to_value(&($value))),*])
    };
    ($other:expr) => { $crate::__to_value(&($other)) };
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 character (input came from &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error::new("invalid utf-8 in string"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_pretty() {
        let v = json!({
            "app": "RD",
            "values": json!([1.5, -2.25, 0.125, json!(7usize)]),
            "nested": json!({ "ok": true, "none": json!(null) }),
        });
        let text = to_string_pretty(&v).unwrap();
        let parsed: Value = from_str(&text).unwrap();
        assert_eq!(parsed, v);
        assert_eq!(v["app"], "RD");
        assert_eq!(v["values"].as_array().unwrap().len(), 4);
    }

    #[test]
    fn integral_floats_survive() {
        let v = json!([2.0f64, 1e300f64, -0.0f64]);
        let text = to_string(&v).unwrap();
        let parsed: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(parsed, vec![2.0, 1e300, 0.0]);
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(from_str::<Value>("{not json").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("{} extra").is_err());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Value::String("a\"b\\c\nd\te\u{0001}ü".to_string());
        let text = to_string(&v).unwrap();
        let parsed: Value = from_str(&text).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn unicode_escape_parsing() {
        let parsed: String = from_str(r#""ü😀""#).unwrap();
        assert_eq!(parsed, "ü😀");
    }
}
